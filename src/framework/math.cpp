#include "framework/math.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.h"

namespace mystique::fw::math {

void
gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
     float alpha, float beta)
{
    for (int64_t i = 0; i < m; ++i) {
        float* crow = c + i * n;
        // beta == 0 must OVERWRITE, never scale: the output may be recycled
        // (uninitialized) arena storage, and NaN * 0 == NaN would propagate
        // garbage into every product.  This is the BLAS convention.
        if (beta == 0.0f)
            std::fill(crow, crow + n, 0.0f);
        else if (beta != 1.0f)
            for (int64_t j = 0; j < n; ++j)
                crow[j] *= beta;
        const float* arow = a + i * k;
        // k-panels of 4: one pass over the C row per four A elements keeps
        // the row in registers/L1 and gives the compiler a clean 4-term FMA
        // chain to vectorize over j.
        int64_t p = 0;
        for (; p + 4 <= k; p += 4) {
            const float av0 = alpha * arow[p];
            const float av1 = alpha * arow[p + 1];
            const float av2 = alpha * arow[p + 2];
            const float av3 = alpha * arow[p + 3];
            const float* b0 = b + p * n;
            const float* b1 = b0 + n;
            const float* b2 = b1 + n;
            const float* b3 = b2 + n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] + av3 * b3[j];
        }
        for (; p < k; ++p) {
            const float av = alpha * arow[p];
            const float* brow = b + p * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
bmm(const float* a, const float* b, float* c, int64_t batch, int64_t m, int64_t k,
    int64_t n)
{
    for (int64_t i = 0; i < batch; ++i)
        gemm(a + i * m * k, b + i * k * n, c + i * m * n, m, k, n, 1.0f, 0.0f);
}

void
add(const float* a, const float* b, float* out, int64_t n, float alpha)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] + alpha * b[i];
}

void
add_broadcast(const float* a, const float* b, float* out, int64_t n, int64_t bn,
              float alpha)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] + alpha * b[i % bn];
}

void
sub(const float* a, const float* b, float* out, int64_t n, float alpha)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] - alpha * b[i];
}

void
mul(const float* a, const float* b, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

void
mul_broadcast(const float* a, const float* b, float* out, int64_t n, int64_t bn)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i % bn];
}

void
div(const float* a, const float* b, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] / b[i];
}

void
mul_scalar(const float* a, float s, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] * s;
}

void
relu(const float* a, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void
relu_backward(const float* grad, const float* input, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = input[i] > 0.0f ? grad[i] : 0.0f;
}

void
sigmoid(const float* a, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = 1.0f / (1.0f + std::exp(-a[i]));
}

void
sigmoid_backward(const float* grad, const float* output, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = grad[i] * output[i] * (1.0f - output[i]);
}

void
tanh_fwd(const float* a, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = std::tanh(a[i]);
}

void
tanh_backward(const float* grad, const float* output, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = grad[i] * (1.0f - output[i] * output[i]);
}

void
exp_fwd(const float* a, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = std::exp(a[i]);
}

void
gelu(const float* a, float* out, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        out[i] = 0.5f * a[i] * (1.0f + std::erf(a[i] * 0.70710678f));
}

void
gelu_backward(const float* grad, const float* input, float* out, int64_t n)
{
    constexpr float kInvSqrt2 = 0.70710678f;
    constexpr float kInvSqrt2Pi = 0.39894228f;
    for (int64_t i = 0; i < n; ++i) {
        const float x = input[i];
        const float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
        const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
        out[i] = grad[i] * (cdf + x * pdf);
    }
}

void
layer_norm(const float* in, const float* gamma, const float* beta, float* out,
           int64_t rows, int64_t cols, float eps)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        double mean = 0.0;
        for (int64_t c = 0; c < cols; ++c)
            mean += static_cast<double>(row[c]);
        mean /= static_cast<double>(cols);
        double var = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            const double d = static_cast<double>(row[c]) - mean;
            var += d * d;
        }
        var /= static_cast<double>(cols);
        const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
        for (int64_t c = 0; c < cols; ++c) {
            const float xhat =
                (row[c] - static_cast<float>(mean)) * inv_std;
            out[r * cols + c] = xhat * (gamma != nullptr ? gamma[c] : 1.0f) +
                                (beta != nullptr ? beta[c] : 0.0f);
        }
    }
}

void
layer_norm_backward(const float* grad_out, const float* in, const float* gamma,
                    float* grad_in, float* grad_gamma, float* grad_beta, int64_t rows,
                    int64_t cols, float eps)
{
    if (grad_gamma != nullptr)
        std::fill(grad_gamma, grad_gamma + cols, 0.0f);
    if (grad_beta != nullptr)
        std::fill(grad_beta, grad_beta + cols, 0.0f);
    const double m = static_cast<double>(cols);
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        const float* grow = grad_out + r * cols;
        double mean = 0.0, var = 0.0;
        for (int64_t c = 0; c < cols; ++c)
            mean += static_cast<double>(row[c]);
        mean /= m;
        for (int64_t c = 0; c < cols; ++c) {
            const double d = static_cast<double>(row[c]) - mean;
            var += d * d;
        }
        var /= m;
        const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(eps));
        double sum_g = 0.0, sum_gx = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            const double xhat = (static_cast<double>(row[c]) - mean) * inv_std;
            const double g = static_cast<double>(grow[c]) *
                             (gamma != nullptr ? static_cast<double>(gamma[c]) : 1.0);
            sum_g += g;
            sum_gx += g * xhat;
            if (grad_gamma != nullptr)
                grad_gamma[c] += static_cast<float>(static_cast<double>(grow[c]) * xhat);
            if (grad_beta != nullptr)
                grad_beta[c] += grow[c];
        }
        for (int64_t c = 0; c < cols; ++c) {
            const double xhat = (static_cast<double>(row[c]) - mean) * inv_std;
            const double g = static_cast<double>(grow[c]) *
                             (gamma != nullptr ? static_cast<double>(gamma[c]) : 1.0);
            grad_in[r * cols + c] =
                static_cast<float>(inv_std * (g - sum_g / m - xhat * sum_gx / m));
        }
    }
}

void
transpose2d(const float* a, float* out, int64_t rows, int64_t cols)
{
    for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < cols; ++j)
            out[j * rows + i] = a[i * cols + j];
}

double
sum(const float* a, int64_t n)
{
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i)
        s += static_cast<double>(a[i]);
    return s;
}

void
sum_axis0(const float* a, float* out, int64_t outer, int64_t inner)
{
    std::fill(out, out + inner, 0.0f);
    for (int64_t i = 0; i < outer; ++i)
        for (int64_t j = 0; j < inner; ++j)
            out[j] += a[i * inner + j];
}

namespace {

int64_t
conv_out_dim(int64_t in, int64_t k, int64_t stride, int64_t pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

} // namespace

void
conv2d(const float* in, const float* w, const float* bias, float* out, int64_t n,
       int64_t c, int64_t h, int64_t wd, int64_t f, int64_t kh, int64_t kw,
       int64_t stride, int64_t pad)
{
    const int64_t oh = conv_out_dim(h, kh, stride, pad);
    const int64_t ow = conv_out_dim(wd, kw, stride, pad);
    for (int64_t ni = 0; ni < n; ++ni) {
        for (int64_t fi = 0; fi < f; ++fi) {
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    float acc = bias != nullptr ? bias[fi] : 0.0f;
                    for (int64_t ci = 0; ci < c; ++ci) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                            const int64_t iy = y * stride + dy - pad;
                            if (iy < 0 || iy >= h)
                                continue;
                            for (int64_t dx = 0; dx < kw; ++dx) {
                                const int64_t ix = x * stride + dx - pad;
                                if (ix < 0 || ix >= wd)
                                    continue;
                                acc += in[((ni * c + ci) * h + iy) * wd + ix] *
                                       w[((fi * c + ci) * kh + dy) * kw + dx];
                            }
                        }
                    }
                    out[((ni * f + fi) * oh + y) * ow + x] = acc;
                }
            }
        }
    }
}

void
conv2d_backward(const float* grad_out, const float* in, const float* w, float* grad_in,
                float* grad_w, float* grad_b, int64_t n, int64_t c, int64_t h, int64_t wd,
                int64_t f, int64_t kh, int64_t kw, int64_t stride, int64_t pad)
{
    const int64_t oh = conv_out_dim(h, kh, stride, pad);
    const int64_t ow = conv_out_dim(wd, kw, stride, pad);
    std::fill(grad_in, grad_in + n * c * h * wd, 0.0f);
    std::fill(grad_w, grad_w + f * c * kh * kw, 0.0f);
    if (grad_b != nullptr)
        std::fill(grad_b, grad_b + f, 0.0f);
    for (int64_t ni = 0; ni < n; ++ni) {
        for (int64_t fi = 0; fi < f; ++fi) {
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    const float g = grad_out[((ni * f + fi) * oh + y) * ow + x];
                    if (grad_b != nullptr)
                        grad_b[fi] += g;
                    for (int64_t ci = 0; ci < c; ++ci) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                            const int64_t iy = y * stride + dy - pad;
                            if (iy < 0 || iy >= h)
                                continue;
                            for (int64_t dx = 0; dx < kw; ++dx) {
                                const int64_t ix = x * stride + dx - pad;
                                if (ix < 0 || ix >= wd)
                                    continue;
                                const int64_t in_idx = ((ni * c + ci) * h + iy) * wd + ix;
                                const int64_t w_idx = ((fi * c + ci) * kh + dy) * kw + dx;
                                grad_in[in_idx] += g * w[w_idx];
                                grad_w[w_idx] += g * in[in_idx];
                            }
                        }
                    }
                }
            }
        }
    }
}

void
batch_norm(const float* in, const float* gamma, const float* beta, float* out, int64_t n,
           int64_t c, int64_t spatial, float eps)
{
    const int64_t count = n * spatial;
    for (int64_t ci = 0; ci < c; ++ci) {
        double mean = 0.0;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s)
                mean += static_cast<double>(in[(ni * c + ci) * spatial + s]);
        mean /= static_cast<double>(count);
        double var = 0.0;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const double d = static_cast<double>(in[(ni * c + ci) * spatial + s]) - mean;
                var += d * d;
            }
        var /= static_cast<double>(count);
        const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
        const float g = gamma != nullptr ? gamma[ci] : 1.0f;
        const float b = beta != nullptr ? beta[ci] : 0.0f;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const int64_t idx = (ni * c + ci) * spatial + s;
                out[idx] = (in[idx] - static_cast<float>(mean)) * inv_std * g + b;
            }
    }
}

void
batch_norm_backward(const float* grad_out, const float* in, const float* gamma,
                    float* grad_in, float* grad_gamma, float* grad_beta, int64_t n,
                    int64_t c, int64_t spatial, float eps)
{
    const int64_t count = n * spatial;
    const double m = static_cast<double>(count);
    for (int64_t ci = 0; ci < c; ++ci) {
        double mean = 0.0, var = 0.0;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s)
                mean += static_cast<double>(in[(ni * c + ci) * spatial + s]);
        mean /= m;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const double d = static_cast<double>(in[(ni * c + ci) * spatial + s]) - mean;
                var += d * d;
            }
        var /= m;
        const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(eps));
        const double g = gamma != nullptr ? static_cast<double>(gamma[ci]) : 1.0;

        double sum_g = 0.0, sum_gx = 0.0;
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const int64_t idx = (ni * c + ci) * spatial + s;
                const double xhat = (static_cast<double>(in[idx]) - mean) * inv_std;
                sum_g += static_cast<double>(grad_out[idx]);
                sum_gx += static_cast<double>(grad_out[idx]) * xhat;
            }
        if (grad_gamma != nullptr)
            grad_gamma[ci] = static_cast<float>(sum_gx);
        if (grad_beta != nullptr)
            grad_beta[ci] = static_cast<float>(sum_g);
        for (int64_t ni = 0; ni < n; ++ni)
            for (int64_t s = 0; s < spatial; ++s) {
                const int64_t idx = (ni * c + ci) * spatial + s;
                const double xhat = (static_cast<double>(in[idx]) - mean) * inv_std;
                grad_in[idx] = static_cast<float>(
                    g * inv_std *
                    (static_cast<double>(grad_out[idx]) - sum_g / m - xhat * sum_gx / m));
            }
    }
}

void
max_pool2d(const float* in, float* out, int64_t n, int64_t c, int64_t h, int64_t w,
           int64_t k, int64_t stride, int64_t pad)
{
    const int64_t oh = conv_out_dim(h, k, stride, pad);
    const int64_t ow = conv_out_dim(w, k, stride, pad);
    for (int64_t nc = 0; nc < n * c; ++nc) {
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                float best = -std::numeric_limits<float>::infinity();
                for (int64_t dy = 0; dy < k; ++dy) {
                    const int64_t iy = y * stride + dy - pad;
                    if (iy < 0 || iy >= h)
                        continue;
                    for (int64_t dx = 0; dx < k; ++dx) {
                        const int64_t ix = x * stride + dx - pad;
                        if (ix < 0 || ix >= w)
                            continue;
                        best = std::max(best, in[(nc * h + iy) * w + ix]);
                    }
                }
                out[(nc * oh + y) * ow + x] = best;
            }
        }
    }
}

void
max_pool2d_backward(const float* grad_out, const float* in, float* grad_in, int64_t n,
                    int64_t c, int64_t h, int64_t w, int64_t k, int64_t stride,
                    int64_t pad)
{
    const int64_t oh = conv_out_dim(h, k, stride, pad);
    const int64_t ow = conv_out_dim(w, k, stride, pad);
    std::fill(grad_in, grad_in + n * c * h * w, 0.0f);
    for (int64_t nc = 0; nc < n * c; ++nc) {
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                float best = -std::numeric_limits<float>::infinity();
                int64_t best_idx = -1;
                for (int64_t dy = 0; dy < k; ++dy) {
                    const int64_t iy = y * stride + dy - pad;
                    if (iy < 0 || iy >= h)
                        continue;
                    for (int64_t dx = 0; dx < k; ++dx) {
                        const int64_t ix = x * stride + dx - pad;
                        if (ix < 0 || ix >= w)
                            continue;
                        const int64_t idx = (nc * h + iy) * w + ix;
                        if (in[idx] > best) {
                            best = in[idx];
                            best_idx = idx;
                        }
                    }
                }
                if (best_idx >= 0)
                    grad_in[best_idx] += grad_out[(nc * oh + y) * ow + x];
            }
        }
    }
}

void
adaptive_avg_pool2d(const float* in, float* out, int64_t n, int64_t c, int64_t h,
                    int64_t w, int64_t oh, int64_t ow)
{
    for (int64_t nc = 0; nc < n * c; ++nc) {
        for (int64_t y = 0; y < oh; ++y) {
            const int64_t y0 = y * h / oh;
            const int64_t y1 = (y + 1) * h / oh;
            for (int64_t x = 0; x < ow; ++x) {
                const int64_t x0 = x * w / ow;
                const int64_t x1 = (x + 1) * w / ow;
                double acc = 0.0;
                for (int64_t iy = y0; iy < y1; ++iy)
                    for (int64_t ix = x0; ix < x1; ++ix)
                        acc += static_cast<double>(in[(nc * h + iy) * w + ix]);
                out[(nc * oh + y) * ow + x] =
                    static_cast<float>(acc / static_cast<double>((y1 - y0) * (x1 - x0)));
            }
        }
    }
}

void
adaptive_avg_pool2d_backward(const float* grad_out, float* grad_in, int64_t n, int64_t c,
                             int64_t h, int64_t w, int64_t oh, int64_t ow)
{
    std::fill(grad_in, grad_in + n * c * h * w, 0.0f);
    for (int64_t nc = 0; nc < n * c; ++nc) {
        for (int64_t y = 0; y < oh; ++y) {
            const int64_t y0 = y * h / oh;
            const int64_t y1 = (y + 1) * h / oh;
            for (int64_t x = 0; x < ow; ++x) {
                const int64_t x0 = x * w / ow;
                const int64_t x1 = (x + 1) * w / ow;
                const float g = grad_out[(nc * oh + y) * ow + x] /
                                static_cast<float>((y1 - y0) * (x1 - x0));
                for (int64_t iy = y0; iy < y1; ++iy)
                    for (int64_t ix = x0; ix < x1; ++ix)
                        grad_in[(nc * h + iy) * w + ix] += g;
            }
        }
    }
}

void
softmax(const float* in, float* out, int64_t rows, int64_t cols)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        float* orow = out + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < cols; ++j) {
            orow[j] = std::exp(row[j] - mx);
            denom += static_cast<double>(orow[j]);
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t j = 0; j < cols; ++j)
            orow[j] *= inv;
    }
}

void
log_softmax(const float* in, float* out, int64_t rows, int64_t cols)
{
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        float* orow = out + r * cols;
        float mx = row[0];
        for (int64_t j = 1; j < cols; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < cols; ++j)
            denom += std::exp(static_cast<double>(row[j] - mx));
        const float logz = mx + static_cast<float>(std::log(denom));
        for (int64_t j = 0; j < cols; ++j)
            orow[j] = row[j] - logz;
    }
}

void
log_softmax_backward(const float* grad, const float* output, float* out, int64_t rows,
                     int64_t cols)
{
    for (int64_t r = 0; r < rows; ++r) {
        double gsum = 0.0;
        for (int64_t j = 0; j < cols; ++j)
            gsum += static_cast<double>(grad[r * cols + j]);
        for (int64_t j = 0; j < cols; ++j) {
            const int64_t idx = r * cols + j;
            out[idx] = grad[idx] -
                       std::exp(output[idx]) * static_cast<float>(gsum);
        }
    }
}

double
nll_loss(const float* logp, const int64_t* target, int64_t rows, int64_t cols)
{
    double loss = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = target[r];
        MYST_CHECK_MSG(t >= 0 && t < cols, "nll target out of range");
        loss -= static_cast<double>(logp[r * cols + t]);
    }
    return loss / static_cast<double>(rows);
}

void
nll_loss_backward(float grad, const int64_t* target, float* out, int64_t rows,
                  int64_t cols)
{
    std::fill(out, out + rows * cols, 0.0f);
    const float g = -grad / static_cast<float>(rows);
    for (int64_t r = 0; r < rows; ++r)
        out[r * cols + target[r]] = g;
}

double
bce_with_logits(const float* logits, const float* target, int64_t n)
{
    double loss = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(logits[i]);
        const double t = static_cast<double>(target[i]);
        // Numerically-stable formulation.
        loss += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::fabs(x)));
    }
    return loss / static_cast<double>(n);
}

void
bce_with_logits_backward(float grad, const float* logits, const float* target, float* out,
                         int64_t n)
{
    const float scale = grad / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
        const float sig = 1.0f / (1.0f + std::exp(-logits[i]));
        out[i] = scale * (sig - target[i]);
    }
}

void
embedding_bag(const float* weight, const int64_t* indices, const int64_t* offsets,
              float* out, int64_t nnz, int64_t bags, int64_t dim)
{
    for (int64_t b = 0; b < bags; ++b) {
        const int64_t begin = offsets[b];
        const int64_t end = b + 1 < bags ? offsets[b + 1] : nnz;
        float* orow = out + b * dim;
        std::fill(orow, orow + dim, 0.0f);
        for (int64_t p = begin; p < end; ++p) {
            const float* wrow = weight + indices[p] * dim;
            for (int64_t d = 0; d < dim; ++d)
                orow[d] += wrow[d];
        }
    }
}

void
embedding_bag_backward(const float* grad_out, const int64_t* indices,
                       const int64_t* offsets, float* grad_weight, int64_t rows,
                       int64_t nnz, int64_t bags, int64_t dim)
{
    std::fill(grad_weight, grad_weight + rows * dim, 0.0f);
    for (int64_t b = 0; b < bags; ++b) {
        const int64_t begin = offsets[b];
        const int64_t end = b + 1 < bags ? offsets[b + 1] : nnz;
        const float* grow = grad_out + b * dim;
        for (int64_t p = begin; p < end; ++p) {
            float* wrow = grad_weight + indices[p] * dim;
            for (int64_t d = 0; d < dim; ++d)
                wrow[d] += grow[d];
        }
    }
}

namespace {

/// Runs LSTM forward, optionally caching per-step gate activations
/// (i, f, g, o) and cell states for BPTT.
void
lstm_forward_impl(const float* in, const float* w_ih, const float* w_hh,
                  const float* bias, float* out, int64_t t, int64_t b, int64_t i,
                  int64_t h, std::vector<float>* gates_cache,
                  std::vector<float>* cell_cache)
{
    std::vector<float> hprev(static_cast<std::size_t>(b * h), 0.0f);
    std::vector<float> cprev(static_cast<std::size_t>(b * h), 0.0f);
    std::vector<float> gates(static_cast<std::size_t>(b * 4 * h));
    for (int64_t step = 0; step < t; ++step) {
        const float* x = in + step * b * i;
        // gates = x @ w_ih^T + h @ w_hh^T + bias
        for (int64_t bi = 0; bi < b; ++bi) {
            for (int64_t gi = 0; gi < 4 * h; ++gi) {
                float acc = bias != nullptr ? bias[gi] : 0.0f;
                const float* wi = w_ih + gi * i;
                for (int64_t k = 0; k < i; ++k)
                    acc += x[bi * i + k] * wi[k];
                const float* wh = w_hh + gi * h;
                for (int64_t k = 0; k < h; ++k)
                    acc += hprev[bi * h + k] * wh[k];
                gates[bi * 4 * h + gi] = acc;
            }
        }
        for (int64_t bi = 0; bi < b; ++bi) {
            for (int64_t k = 0; k < h; ++k) {
                float* g = gates.data() + bi * 4 * h;
                const float ig = 1.0f / (1.0f + std::exp(-g[k]));
                const float fg = 1.0f / (1.0f + std::exp(-g[h + k]));
                const float gg = std::tanh(g[2 * h + k]);
                const float og = 1.0f / (1.0f + std::exp(-g[3 * h + k]));
                const float c = fg * cprev[bi * h + k] + ig * gg;
                const float hv = og * std::tanh(c);
                // Cache post-activation gates for backward.
                g[k] = ig;
                g[h + k] = fg;
                g[2 * h + k] = gg;
                g[3 * h + k] = og;
                cprev[bi * h + k] = c;
                hprev[bi * h + k] = hv;
                out[(step * b + bi) * h + k] = hv;
            }
        }
        if (gates_cache != nullptr)
            gates_cache->insert(gates_cache->end(), gates.begin(), gates.end());
        if (cell_cache != nullptr)
            cell_cache->insert(cell_cache->end(), cprev.begin(), cprev.end());
    }
}

} // namespace

void
lstm_layer(const float* in, const float* w_ih, const float* w_hh, const float* bias,
           float* out, int64_t t, int64_t b, int64_t i, int64_t h)
{
    lstm_forward_impl(in, w_ih, w_hh, bias, out, t, b, i, h, nullptr, nullptr);
}

void
lstm_layer_backward(const float* grad_out, const float* in, const float* w_ih,
                    const float* w_hh, const float* bias, float* grad_in,
                    float* grad_w_ih, float* grad_w_hh, float* grad_bias, int64_t t,
                    int64_t b, int64_t i, int64_t h)
{
    std::vector<float> out(static_cast<std::size_t>(t * b * h));
    std::vector<float> gates; // per step: [b, 4h] post-activation
    std::vector<float> cells; // per step: [b, h]
    gates.reserve(static_cast<std::size_t>(t * b * 4 * h));
    cells.reserve(static_cast<std::size_t>(t * b * h));
    lstm_forward_impl(in, w_ih, w_hh, bias, out.data(), t, b, i, h, &gates, &cells);

    std::fill(grad_in, grad_in + t * b * i, 0.0f);
    std::fill(grad_w_ih, grad_w_ih + 4 * h * i, 0.0f);
    std::fill(grad_w_hh, grad_w_hh + 4 * h * h, 0.0f);
    if (grad_bias != nullptr)
        std::fill(grad_bias, grad_bias + 4 * h, 0.0f);

    std::vector<float> dh(static_cast<std::size_t>(b * h), 0.0f);
    std::vector<float> dc(static_cast<std::size_t>(b * h), 0.0f);
    std::vector<float> dgates(static_cast<std::size_t>(b * 4 * h));

    for (int64_t step = t - 1; step >= 0; --step) {
        const float* g = gates.data() + step * b * 4 * h;
        const float* c = cells.data() + step * b * h;
        const float* cm1 = step > 0 ? cells.data() + (step - 1) * b * h : nullptr;
        const float* hm1 = step > 0 ? out.data() + (step - 1) * b * h : nullptr;
        for (int64_t bi = 0; bi < b; ++bi) {
            for (int64_t k = 0; k < h; ++k) {
                const int64_t hk = bi * h + k;
                const float go = grad_out[(step * b + bi) * h + k] + dh[hk];
                const float ig = g[bi * 4 * h + k];
                const float fg = g[bi * 4 * h + h + k];
                const float gg = g[bi * 4 * h + 2 * h + k];
                const float og = g[bi * 4 * h + 3 * h + k];
                const float tc = std::tanh(c[hk]);
                const float dcv = go * og * (1.0f - tc * tc) + dc[hk];
                const float cprev = cm1 != nullptr ? cm1[hk] : 0.0f;
                dgates[bi * 4 * h + k] = dcv * gg * ig * (1.0f - ig);          // di
                dgates[bi * 4 * h + h + k] = dcv * cprev * fg * (1.0f - fg);   // df
                dgates[bi * 4 * h + 2 * h + k] = dcv * ig * (1.0f - gg * gg);  // dg
                dgates[bi * 4 * h + 3 * h + k] = go * tc * og * (1.0f - og);   // do
                dc[hk] = dcv * fg;
            }
        }
        // Propagate through the affine layers.
        std::fill(dh.begin(), dh.end(), 0.0f);
        const float* x = in + step * b * i;
        for (int64_t bi = 0; bi < b; ++bi) {
            for (int64_t gi = 0; gi < 4 * h; ++gi) {
                const float dg = dgates[bi * 4 * h + gi];
                if (grad_bias != nullptr)
                    grad_bias[gi] += dg;
                float* gwi = grad_w_ih + gi * i;
                for (int64_t k = 0; k < i; ++k) {
                    gwi[k] += dg * x[bi * i + k];
                    grad_in[(step * b + bi) * i + k] += dg * w_ih[gi * i + k];
                }
                if (hm1 != nullptr) {
                    float* gwh = grad_w_hh + gi * h;
                    for (int64_t k = 0; k < h; ++k) {
                        gwh[k] += dg * hm1[bi * h + k];
                        dh[bi * h + k] += dg * w_hh[gi * h + k];
                    }
                }
            }
        }
    }
}

void
randn(float* out, int64_t n, Rng& rng, float scale)
{
    for (int64_t idx = 0; idx < n; ++idx)
        out[idx] = static_cast<float>(rng.normal()) * scale;
}

} // namespace mystique::fw::math
