#pragma once

/// @file
/// KernelDesc builders shared by operator implementations.
///
/// Kernel names are deterministic functions of the op family and shapes, so
/// the same logical kernel gets the same name in original and replay runs —
/// which is what lets Figure 6 compare per-kernel metrics by name.

#include <cstdint>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "device/kernel.h"
#include "framework/tensor.h"

namespace mystique::fw {

/// Zeroes a tensor's backing bytes when it has any.  Ops whose outputs must
/// read as zeros (aten::zeros, out-of-place collectives) call this instead
/// of relying on allocation: recycled StorageArena buffers are not zeroed.
inline void
zero_fill(const Tensor& t)
{
    if (t.defined() && t.materialized() && t.nbytes() > 0)
        std::memset(t.impl()->storage->data(), 0, static_cast<std::size_t>(t.nbytes()));
}

inline dev::KernelDesc
gemm_kernel(int64_t m, int64_t k, int64_t n, int64_t batch = 1,
            dev::OpCategory cat = dev::OpCategory::kATen)
{
    dev::KernelDesc d;
    d.name = batch > 1 ? strprintf("sgemm_b%lld_%lldx%lldx%lld", static_cast<long long>(batch),
                                   static_cast<long long>(m), static_cast<long long>(n),
                                   static_cast<long long>(k))
                       : strprintf("sgemm_%lldx%lldx%lld", static_cast<long long>(m),
                                   static_cast<long long>(n), static_cast<long long>(k));
    d.kind = dev::KernelKind::kGemm;
    d.category = cat;
    d.flops = 2.0 * static_cast<double>(batch) * static_cast<double>(m) *
              static_cast<double>(k) * static_cast<double>(n);
    d.bytes = 4.0 * static_cast<double>(batch) *
              (static_cast<double>(m * k) + static_cast<double>(k * n) +
               static_cast<double>(m * n));
    d.working_set_bytes = d.bytes;
    d.locality = 0.85;
    d.parallelism = static_cast<double>(batch * m * n);
    return d;
}

inline dev::KernelDesc
pointwise_kernel(const std::string& family, int64_t numel, int n_inputs,
                 double flops_per_elem = 1.0,
                 dev::OpCategory cat = dev::OpCategory::kATen)
{
    dev::KernelDesc d;
    d.name = strprintf("vectorized_elementwise_%s_%lld", family.c_str(),
                       static_cast<long long>(numel));
    d.kind = dev::KernelKind::kPointwise;
    d.category = cat;
    d.flops = flops_per_elem * static_cast<double>(numel);
    d.bytes = 4.0 * static_cast<double>(numel) * (n_inputs + 1);
    d.working_set_bytes = d.bytes;
    d.locality = 0.92;
    d.parallelism = static_cast<double>(numel);
    return d;
}

inline dev::KernelDesc
reduction_kernel(const std::string& family, int64_t numel_in, int64_t numel_out)
{
    dev::KernelDesc d;
    d.name = strprintf("reduce_%s_%lld", family.c_str(), static_cast<long long>(numel_in));
    d.kind = dev::KernelKind::kReduction;
    d.flops = static_cast<double>(numel_in);
    d.bytes = 4.0 * static_cast<double>(numel_in + numel_out);
    d.working_set_bytes = d.bytes;
    d.locality = 0.9;
    d.parallelism = static_cast<double>(numel_in);
    return d;
}

inline dev::KernelDesc
conv_kernel(const std::string& tag, int64_t n, int64_t c, int64_t f, int64_t kh,
            int64_t kw, int64_t oh, int64_t ow, double bytes)
{
    dev::KernelDesc d;
    d.name = strprintf("implicit_gemm_%s_n%lld_c%lld_f%lld_k%lldx%lld_o%lldx%lld",
                       tag.c_str(), static_cast<long long>(n), static_cast<long long>(c),
                       static_cast<long long>(f), static_cast<long long>(kh),
                       static_cast<long long>(kw), static_cast<long long>(oh),
                       static_cast<long long>(ow));
    d.kind = dev::KernelKind::kConv;
    d.flops = 2.0 * static_cast<double>(n) * static_cast<double>(f) *
              static_cast<double>(oh) * static_cast<double>(ow) * static_cast<double>(c) *
              static_cast<double>(kh) * static_cast<double>(kw);
    d.bytes = bytes;
    d.working_set_bytes = bytes;
    d.locality = 0.8;
    d.parallelism = static_cast<double>(n * f * oh * ow);
    return d;
}

inline dev::KernelDesc
norm_kernel(const std::string& family, int64_t numel)
{
    dev::KernelDesc d;
    d.name = strprintf("%s_%lld", family.c_str(), static_cast<long long>(numel));
    d.kind = dev::KernelKind::kNorm;
    d.flops = 8.0 * static_cast<double>(numel);
    d.bytes = 4.0 * 3.0 * static_cast<double>(numel);
    d.working_set_bytes = d.bytes;
    d.locality = 0.85;
    d.parallelism = static_cast<double>(numel);
    return d;
}

inline dev::KernelDesc
pool_kernel(const std::string& family, int64_t numel_in, int64_t numel_out, int64_t k)
{
    dev::KernelDesc d;
    d.name = strprintf("%s_%lld", family.c_str(), static_cast<long long>(numel_in));
    d.kind = dev::KernelKind::kPool;
    d.flops = static_cast<double>(numel_out) * static_cast<double>(k * k);
    d.bytes = 4.0 * static_cast<double>(numel_in + numel_out);
    d.working_set_bytes = d.bytes;
    d.locality = 0.85;
    d.parallelism = static_cast<double>(numel_out);
    return d;
}

inline dev::KernelDesc
softmax_kernel(const std::string& family, int64_t numel)
{
    dev::KernelDesc d;
    d.name = strprintf("%s_%lld", family.c_str(), static_cast<long long>(numel));
    d.kind = dev::KernelKind::kSoftmax;
    d.flops = 5.0 * static_cast<double>(numel);
    d.bytes = 4.0 * 2.0 * static_cast<double>(numel);
    d.working_set_bytes = d.bytes;
    d.locality = 0.9;
    d.parallelism = static_cast<double>(numel);
    return d;
}

inline dev::KernelDesc
loss_kernel(const std::string& family, int64_t numel)
{
    dev::KernelDesc d;
    d.name = strprintf("%s_%lld", family.c_str(), static_cast<long long>(numel));
    d.kind = dev::KernelKind::kLoss;
    d.flops = 6.0 * static_cast<double>(numel);
    d.bytes = 4.0 * 2.0 * static_cast<double>(numel);
    d.working_set_bytes = d.bytes;
    d.locality = 0.9;
    d.parallelism = static_cast<double>(numel);
    return d;
}

inline dev::KernelDesc
memcpy_kernel(int64_t bytes)
{
    dev::KernelDesc d;
    d.name = strprintf("memcpy_h2d_%lld", static_cast<long long>(bytes));
    d.kind = dev::KernelKind::kMemcpy;
    d.flops = 0.0;
    d.bytes = static_cast<double>(bytes);
    d.working_set_bytes = static_cast<double>(bytes);
    d.locality = 1.0;
    d.parallelism = static_cast<double>(bytes / 4);
    return d;
}

/// Embedding gather; locality derived from the actual index distribution —
/// the paper's value-dependent special case (§4.4).
inline dev::KernelDesc
embedding_kernel(const std::string& family, int64_t nnz, int64_t dim, int64_t unique_rows,
                 double locality, dev::OpCategory cat = dev::OpCategory::kATen)
{
    dev::KernelDesc d;
    d.name = strprintf("%s_nnz%lld_d%lld", family.c_str(), static_cast<long long>(nnz),
                       static_cast<long long>(dim));
    d.kind = dev::KernelKind::kEmbedding;
    d.category = cat;
    d.flops = static_cast<double>(nnz) * static_cast<double>(dim);
    d.bytes = 4.0 * static_cast<double>(nnz) * static_cast<double>(dim);
    d.working_set_bytes = 4.0 * static_cast<double>(unique_rows) * static_cast<double>(dim);
    d.locality = locality;
    d.parallelism = static_cast<double>(nnz * dim);
    return d;
}

inline dev::KernelDesc
comm_kernel(const std::string& coll_name, double bytes)
{
    dev::KernelDesc d;
    d.name = strprintf("nccl_%s_%lld", coll_name.c_str(), static_cast<long long>(bytes));
    d.kind = dev::KernelKind::kComm;
    d.category = dev::OpCategory::kComm;
    d.flops = 0.0;
    d.bytes = bytes;
    d.working_set_bytes = bytes;
    d.locality = 1.0;
    d.parallelism = bytes / 4.0;
    return d;
}

inline dev::KernelDesc
lstm_kernel(const std::string& tag, int64_t t, int64_t b, int64_t in_dim, int64_t h,
            double flop_scale = 1.0)
{
    dev::KernelDesc d;
    d.name = strprintf("lstm_%s_t%lld_b%lld_h%lld", tag.c_str(), static_cast<long long>(t),
                       static_cast<long long>(b), static_cast<long long>(h));
    d.kind = dev::KernelKind::kLstm;
    d.category = dev::OpCategory::kCustom;
    d.flops = flop_scale * 2.0 * static_cast<double>(t) * static_cast<double>(b) *
              static_cast<double>(4 * h) * static_cast<double>(in_dim + h);
    d.bytes = 4.0 * (static_cast<double>(4 * h * (in_dim + h)) +
                     static_cast<double>(t * b * (in_dim + 5 * h)));
    d.working_set_bytes = d.bytes;
    d.locality = 0.8;
    d.parallelism = static_cast<double>(b * h);
    return d;
}

} // namespace mystique::fw
