#pragma once

/// @file
/// Thin user-facing wrappers that build schema-ordered IValue vectors — the
/// torch.nn.functional analogue.  Model code written against these helpers
/// produces exactly the op stream the ET records and the replayer rebuilds.

#include <vector>

#include "framework/session.h"

namespace mystique::fw::F {

inline Tensor
linear(Session& s, const Tensor& x, const Tensor& w, const Tensor& b = Tensor())
{
    return s.call_t(MYST_OP("aten::linear"), {IValue(x), IValue(w), IValue(b)});
}

inline Tensor
relu(Session& s, const Tensor& x)
{
    return s.call_t(MYST_OP("aten::relu"), {IValue(x)});
}

inline Tensor
sigmoid(Session& s, const Tensor& x)
{
    return s.call_t(MYST_OP("aten::sigmoid"), {IValue(x)});
}

inline Tensor
tanh(Session& s, const Tensor& x)
{
    return s.call_t(MYST_OP("aten::tanh"), {IValue(x)});
}

inline Tensor
add(Session& s, const Tensor& a, const Tensor& b, double alpha = 1.0)
{
    return s.call_t(MYST_OP("aten::add.Tensor"), {IValue(a), IValue(b), IValue(alpha)});
}

inline Tensor
mul(Session& s, const Tensor& a, const Tensor& b)
{
    return s.call_t(MYST_OP("aten::mul.Tensor"), {IValue(a), IValue(b)});
}

inline Tensor
mm(Session& s, const Tensor& a, const Tensor& b)
{
    return s.call_t(MYST_OP("aten::mm"), {IValue(a), IValue(b)});
}

inline Tensor
bmm(Session& s, const Tensor& a, const Tensor& b)
{
    return s.call_t(MYST_OP("aten::bmm"), {IValue(a), IValue(b)});
}

inline Tensor
cat(Session& s, std::vector<Tensor> tensors, int64_t dim)
{
    return s.call_t(MYST_OP("aten::cat"), {IValue(std::move(tensors)), IValue(dim)});
}

inline Tensor
reshape(Session& s, const Tensor& x, std::vector<int64_t> shape)
{
    return s.call_t(MYST_OP("aten::reshape"), {IValue(x), IValue(std::move(shape))});
}

inline Tensor
transpose(Session& s, const Tensor& x, int64_t d0, int64_t d1)
{
    return s.call_t(MYST_OP("aten::transpose.int"), {IValue(x), IValue(d0), IValue(d1)});
}

inline Tensor
conv2d(Session& s, const Tensor& x, const Tensor& w, const Tensor& b, int64_t stride,
       int64_t padding)
{
    return s.call_t(MYST_OP("aten::conv2d"),
                    {IValue(x), IValue(w), IValue(b),
                     IValue(std::vector<int64_t>{stride, stride}),
                     IValue(std::vector<int64_t>{padding, padding})});
}

inline Tensor
batch_norm(Session& s, const Tensor& x, const Tensor& gamma, const Tensor& beta,
           bool training = true, double eps = 1e-5)
{
    return s.call_t(MYST_OP("aten::batch_norm"),
                    {IValue(x), IValue(gamma), IValue(beta), IValue(training), IValue(eps)});
}

inline Tensor
max_pool2d(Session& s, const Tensor& x, int64_t k, int64_t stride, int64_t padding = 0)
{
    return s.call_t(MYST_OP("aten::max_pool2d"),
                    {IValue(x), IValue(std::vector<int64_t>{k, k}),
                     IValue(std::vector<int64_t>{stride, stride}),
                     IValue(std::vector<int64_t>{padding, padding})});
}

inline Tensor
adaptive_avg_pool2d(Session& s, const Tensor& x, int64_t oh, int64_t ow)
{
    return s.call_t(MYST_OP("aten::adaptive_avg_pool2d"),
                    {IValue(x), IValue(std::vector<int64_t>{oh, ow})});
}

inline Tensor
log_softmax(Session& s, const Tensor& x, int64_t dim)
{
    return s.call_t(MYST_OP("aten::log_softmax.int"), {IValue(x), IValue(dim)});
}

inline Tensor
nll_loss(Session& s, const Tensor& logp, const Tensor& target)
{
    return s.call_t(MYST_OP("aten::nll_loss"), {IValue(logp), IValue(target)});
}

inline Tensor
bce_with_logits(Session& s, const Tensor& logits, const Tensor& target)
{
    return s.call_t(MYST_OP("aten::binary_cross_entropy_with_logits"),
                    {IValue(logits), IValue(target)});
}

inline Tensor
embedding_bag(Session& s, const Tensor& weight, const Tensor& indices,
              const Tensor& offsets)
{
    return s.call_t(MYST_OP("aten::embedding_bag"),
                    {IValue(weight), IValue(indices), IValue(offsets), IValue(0)});
}

inline Tensor
dropout(Session& s, const Tensor& x, double p, bool train = true)
{
    return s.call(MYST_OP("aten::native_dropout"), {IValue(x), IValue(p), IValue(train)})[0].tensor();
}

/// Moves a (host) tensor to the session's device via the memcpy stream.
inline Tensor
to_device(Session& s, const Tensor& x)
{
    const std::string dev_name =
        s.options().platform.is_gpu ? "cuda:" + std::to_string(s.rank()) : "cpu";
    return s.call_t(MYST_OP("aten::to.device"), {IValue(x), IValue(dev_name)});
}

inline Tensor
all_reduce(Session& s, const Tensor& t, int64_t pg)
{
    return s.call_t(MYST_OP("c10d::all_reduce"), {IValue(t), IValue(pg)});
}

inline Tensor
all_to_all(Session& s, const Tensor& t, int64_t pg)
{
    return s.call_t(MYST_OP("c10d::all_to_all"), {IValue(t), IValue(pg)});
}

} // namespace mystique::fw::F
