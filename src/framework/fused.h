#pragma once

/// @file
/// JIT-fused pointwise operators (§3.3, §4.3.4).
///
/// Mirrors @torch.jit.script + NVFuser behaviour: a chain of pointwise ops is
/// emitted as a *single* fused operator whose ET node carries **no schema**
/// (the current ET format lacks fused-op reconstruction metadata), so the
/// replayer must skip it — the paper's documented coverage gap.

#include <string>
#include <vector>

#include "framework/session.h"

namespace mystique::fw {

/// out = relu(a * b + c), executed as one fused kernel.
/// The backward decomposes into ordinary ATen ops, as JIT autodiff does.
Tensor fused_mul_add_relu(Session& s, const Tensor& a, const Tensor& b, const Tensor& c);

/// out = sigmoid(a + b), executed as one fused kernel.
Tensor fused_add_sigmoid(Session& s, const Tensor& a, const Tensor& b);

} // namespace mystique::fw
