/// @file
/// Tensor creation and memory-movement operators.
///
/// aten::to models the host→device input transfer on the dedicated memcpy
/// stream (22), as in the paper's profiler screenshots.

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "framework/kernel_utils.h"
#include "framework/math.h"
#include "framework/op_registry.h"
#include "framework/session.h"

namespace mystique::fw {

namespace {

std::vector<IValue>
ones_like_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    Tensor out = s.alloc(a.shape(), a.dtype());
    if (s.numeric() && a.dtype() == DType::kFloat32)
        std::fill(out.f32(), out.f32() + out.numel(), 1.0f);
    else
        zero_fill(out);
    s.launch(pointwise_kernel("fill", a.numel(), 0), dev::kComputeStream, {}, {out});
    return {IValue(out)};
}

std::vector<IValue>
zeros_like_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    Tensor out = s.alloc(a.shape(), a.dtype());
    // Recycled arena storage is not zeroed: fill explicitly, and model the
    // memset kernel.
    zero_fill(out);
    s.launch(pointwise_kernel("fill", a.numel(), 0), dev::kComputeStream, {}, {out});
    return {IValue(out)};
}

std::vector<IValue>
zeros_fn(Session& s, const std::vector<IValue>& in)
{
    Tensor out = s.alloc(in[0].int_list());
    zero_fill(out);
    s.launch(pointwise_kernel("fill", out.numel(), 0), dev::kComputeStream, {}, {out});
    return {IValue(out)};
}

std::vector<IValue>
randn_fn(Session& s, const std::vector<IValue>& in)
{
    Tensor out = s.alloc(in[0].int_list());
    if (s.numeric())
        math::randn(out.f32(), out.numel(), s.rng());
    s.launch(pointwise_kernel("philox_randn", out.numel(), 0, 8.0), dev::kComputeStream,
             {}, {out});
    return {IValue(out)};
}

std::vector<IValue>
to_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& a = in[0].tensor();
    const std::string& device = in[1].str();
    Tensor out = s.alloc(a.shape(), a.dtype(), /*force_materialize=*/a.materialized());
    out.impl()->device = device;
    if (a.materialized() && out.materialized() && a.nbytes() > 0)
        std::memcpy(out.impl()->storage->data(), a.impl()->storage->data(),
                    static_cast<std::size_t>(a.nbytes()));
    s.launch(memcpy_kernel(a.nbytes()), dev::kMemcpyStream, {a}, {out});
    return {IValue(out)};
}

std::vector<IValue>
copy_fn(Session& s, const std::vector<IValue>& in)
{
    const Tensor& dst = in[0].tensor();
    const Tensor& src = in[1].tensor();
    MYST_CHECK_MSG(dst.numel() == src.numel(), "copy_ numel mismatch");
    Tensor dst_mut = dst;
    if (dst.materialized() && src.materialized() && src.nbytes() > 0)
        std::memcpy(dst_mut.impl()->storage->data(), src.impl()->storage->data(),
                    static_cast<std::size_t>(src.nbytes()));
    s.launch(memcpy_kernel(src.nbytes()), dev::kMemcpyStream, {src}, {dst_mut});
    return {IValue(dst_mut)};
}

} // namespace

void
register_creation_ops(OpRegistry& reg)
{
    reg.register_op({.name = "aten::ones_like",
                     .schema = "aten::ones_like(Tensor self) -> Tensor",
                     .fn = ones_like_fn});
    reg.register_op({.name = "aten::zeros_like",
                     .schema = "aten::zeros_like(Tensor self) -> Tensor",
                     .fn = zeros_like_fn});
    reg.register_op({.name = "aten::zeros",
                     .schema = "aten::zeros(int[] size) -> Tensor",
                     .fn = zeros_fn});
    reg.register_op({.name = "aten::randn",
                     .schema = "aten::randn(int[] size) -> Tensor",
                     .fn = randn_fn});
    reg.register_op({.name = "aten::to.device",
                     .schema = "aten::to.device(Tensor self, str device) -> Tensor",
                     .fn = to_fn});
    reg.register_op({.name = "aten::copy_",
                     .schema = "aten::copy_(Tensor(a!) self, Tensor src) -> Tensor(a!)",
                     .fn = copy_fn});
}

} // namespace mystique::fw
