#include "framework/storage_arena.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/error.h"

namespace mystique::fw {

namespace {

bool
poison_env_enabled()
{
    const char* v = std::getenv("MYST_ARENA_POISON");
    return v != nullptr && v[0] == '1';
}

} // namespace

StorageArena::StorageArena(int64_t max_cached_bytes)
    : max_cached_bytes_(max_cached_bytes), poison_(poison_env_enabled())
{
    MYST_CHECK_MSG(max_cached_bytes_ >= 0, "negative arena cache cap");
}

StorageArena::~StorageArena()
{
    trim();
}

int64_t
StorageArena::bucket_bytes(int64_t nbytes)
{
    MYST_CHECK_MSG(nbytes >= 0, "negative storage size");
    if (nbytes <= kMinBucketBytes)
        return kMinBucketBytes;
    return static_cast<int64_t>(std::bit_ceil(static_cast<uint64_t>(nbytes)));
}

std::size_t
StorageArena::bucket_index(int64_t capacity)
{
    return static_cast<std::size_t>(std::bit_width(static_cast<uint64_t>(capacity)) - 1);
}

StorageArena::Block
StorageArena::acquire(int64_t nbytes)
{
    if (nbytes <= 0)
        return {};
    const int64_t capacity = bucket_bytes(nbytes);
    const std::size_t idx = bucket_index(capacity);
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<std::byte*>& bucket = buckets_[idx];
        if (!bucket.empty()) {
            Block b{bucket.back(), capacity};
            bucket.pop_back();
            ++stats_.hits;
            stats_.bytes_cached -= capacity;
            stats_.bytes_outstanding += capacity;
            if (stats_.bytes_outstanding > stats_.peak_bytes_outstanding)
                stats_.peak_bytes_outstanding = stats_.bytes_outstanding;
            if (poison_)
                std::memset(b.data, 0xFF, static_cast<std::size_t>(capacity));
            return b;
        }
        ++stats_.misses;
        stats_.bytes_outstanding += capacity;
        if (stats_.bytes_outstanding > stats_.peak_bytes_outstanding)
            stats_.peak_bytes_outstanding = stats_.bytes_outstanding;
    }
    // Heap allocation (and its zero-fill) happen outside the lock.
    return {new std::byte[static_cast<std::size_t>(capacity)](), capacity};
}

void
StorageArena::release(Block block) noexcept
{
    if (block.data == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.bytes_outstanding -= block.capacity;
        if (stats_.bytes_cached + block.capacity <= max_cached_bytes_) {
            buckets_[bucket_index(block.capacity)].push_back(block.data);
            stats_.bytes_cached += block.capacity;
            ++stats_.returns;
            return;
        }
        ++stats_.heap_frees;
    }
    delete[] block.data;
}

StorageArenaStats
StorageArena::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
StorageArena::trim()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& bucket : buckets_) {
        for (std::byte* p : bucket)
            delete[] p;
        bucket.clear();
    }
    stats_.bytes_cached = 0;
}

} // namespace mystique::fw
