#pragma once

/// @file
/// Seeded, deterministic generator of randomized-but-valid execution traces.
///
/// The automated-benchmark-generation literature's core caveat applies to
/// Mystique too: generated benchmarks are only trustworthy with an
/// independent validity oracle.  The fuzzer is the *input half* of that
/// oracle (core/… checks are the other half, see testing/differential.h):
/// from a single uint64 seed it derives a random operator program — varying
/// shapes, op mixes, pointwise-chain lengths (the plan optimizer's fusion
/// legality surface), embedding lookups, collectives, wrapper scopes,
/// autograd use, execution mode, stream maps and selection filters — runs it
/// on a real recording Session, and hands back the captured ExecutionTrace +
/// ProfilerTrace + a matching ReplayConfig.  Half the corpus additionally
/// spreads its compute kernels over a randomized correlation→stream map
/// (2–4 streams, collectives interleaved on the comm stream), creating the
/// cross-stream dependencies the async executor schedules around, and the
/// config's async_level alternates so both executors face every check.
///
/// Every trace is *valid by construction* (it was actually executed, so
/// schemas, tensor IDs, parent links and process groups are exactly what the
/// Session records in production) yet randomized along every axis the replay
/// pipeline fingerprints.  Equal seeds reproduce byte-identical cases: the
/// whole pipeline below is virtual-time simulation over seeded Rng streams,
/// so a failing seed printed by the oracle or the `mystique-fuzz` CLI replays
/// the exact failure anywhere.

#include <cstdint>
#include <string>

#include "core/replay_plan.h"
#include "et/trace.h"
#include "profiler/profiler.h"

namespace mystique::testing {

/// One generated fuzz case: a recorded trace, its profiler trace, and the
/// replay configuration the differential checks should use.
struct FuzzedCase {
    uint64_t seed = 0;
    et::ExecutionTrace trace;
    prof::ProfilerTrace prof;
    /// Whether plan builds should consume `prof` (stream-map variation:
    /// prof-less builds exercise the default-stream assignment path).
    bool use_prof = true;
    core::ReplayConfig cfg;
    /// One-line human description ("seed=7 numeric ops=42 chains=3 pg ..."),
    /// printed alongside the seed in failure reports.
    std::string summary;
};

/// Deterministically generates one case from @p seed.  Equal seeds produce
/// traces with equal structural fingerprints and equal configs.
FuzzedCase generate_case(uint64_t seed);

/// Derives the per-case seed for corpus position @p index under corpus seed
/// @p base_seed (splitmix-style mix, so neighboring indices decorrelate).
/// Failure reports print this value — `mystique-fuzz --seed <it>` or
/// `generate_case(<it>)` reproduces the exact case.
uint64_t case_seed(uint64_t base_seed, uint64_t index);

} // namespace mystique::testing
