#include "testing/fault_churn.h"

#include <atomic>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/fault_injection.h"
#include "core/plan_cache.h"
#include "testing/trace_fuzzer.h"

namespace mystique::testing {

namespace {

/// Distinct traces under churn: enough keys that a capacity-2 cache keeps
/// evicting (every fetch may consult disk), few enough that every key is
/// exercised by every thread.
constexpr int kCases = 3;

const prof::ProfilerTrace*
prof_of(const FuzzedCase& c)
{
    return c.use_prof ? &c.prof : nullptr;
}

} // namespace

ChurnReport
run_churn(const std::string& site, const std::string& store_dir, uint64_t seed,
          int threads, int ops_per_thread)
{
    ChurnReport rep;
    rep.site = site;

    std::vector<FuzzedCase> cases;
    cases.reserve(kCases);
    for (uint64_t i = 0; i < kCases; ++i)
        cases.push_back(generate_case(case_seed(seed, i)));

    // Capacity below the working set: the memory tier thrashes, so disk
    // loads, quarantines and writebacks happen continuously — not just once.
    core::PlanCache cache(2);
    cache.set_store_dir(store_dir);

    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();
    if (site == "pool.background_delay")
        fi.arm(site, 5, FaultMode::kDelay); // 5 ms stalls widen race windows
    else
        fi.arm(site, 3, FaultMode::kEvery); // every 3rd hit fails

    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> errs{0};
    std::mutex detail_mu;
    std::string first_detail;

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < ops_per_thread; ++i) {
                const FuzzedCase& c =
                    cases[static_cast<std::size_t>(t + i) % cases.size()];
                try {
                    const auto plan = cache.get_or_build(c.trace, prof_of(c), c.cfg);
                    // "Never a wrong plan": whatever tier served this — fresh
                    // build, memory hit, disk load after another thread's
                    // writeback — it must be a plan over *this* trace.
                    if (plan == nullptr ||
                        plan->trace().structural_fingerprint() !=
                            c.trace.structural_fingerprint())
                        throw std::runtime_error("cache returned a wrong plan");
                    // Interleave the cache's other mutating entry points so
                    // faults land during clears and flushes too.
                    if (t == 0 && i % 4 == 3)
                        cache.clear();
                    if (t == 1 && i % 5 == 4)
                        cache.flush_writebacks();
                } catch (const std::exception& e) {
                    ++errs;
                    std::lock_guard<std::mutex> lock(detail_mu);
                    if (first_detail.empty())
                        first_detail = std::string("thread ") + std::to_string(t) +
                                       " op " + std::to_string(i) + ": " + e.what();
                }
                ++ops;
            }
        });
    }
    for (std::thread& w : workers)
        w.join();

    rep.operations = ops.load();
    rep.exceptions = errs.load();
    rep.faults_fired = fi.total_fired(); // before disarm_all clears counters
    fi.disarm_all();

    // Heal pass: rebuild every key once (quarantined or never-persisted
    // entries get built and written back), then wait for the writebacks.
    cache.clear();
    for (const FuzzedCase& c : cases)
        cache.get_or_build(c.trace, prof_of(c), c.cfg);
    cache.flush_writebacks();

    // Assert pass: with the store healed, a fresh sweep must be pure disk
    // hits — zero builds.
    cache.clear();
    const uint64_t builds_before = cache.stats().builds;
    for (const FuzzedCase& c : cases)
        cache.get_or_build(c.trace, prof_of(c), c.cfg);
    cache.flush_writebacks();
    rep.heal_builds = cache.stats().builds - builds_before;
    rep.healed = rep.heal_builds == 0;

    // Directory audit: `.tmp.*` turds are forbidden on every failure path;
    // `.bad` quarantines are the designed outcome of unreadable entries.
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(store_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            ++rep.tmp_files;
        else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".bad") == 0)
            ++rep.quarantined;
    }

    if (!rep.ok() && rep.detail.empty()) {
        if (!first_detail.empty())
            rep.detail = first_detail;
        else if (rep.tmp_files > 0)
            rep.detail = std::to_string(rep.tmp_files) + " leftover .tmp.* file(s)";
        else if (!rep.healed)
            rep.detail = "store did not heal: " + std::to_string(rep.heal_builds) +
                         " build(s) on the post-heal sweep";
    }
    return rep;
}

std::vector<ChurnReport>
run_churn_all(const std::string& store_root, uint64_t seed, int threads,
              int ops_per_thread)
{
    std::vector<ChurnReport> reports;
    for (const std::string& site : fault_sites()) {
        std::string dir = store_root;
        // One subdirectory per site: audits stay independent.
        std::string sub = site;
        for (char& ch : sub)
            if (ch == '.')
                ch = '_';
        dir += "/" + sub;
        std::filesystem::create_directories(dir);
        reports.push_back(run_churn(site, dir, seed, threads, ops_per_thread));
    }
    return reports;
}

} // namespace mystique::testing
