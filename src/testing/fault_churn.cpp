#include "testing/fault_churn.h"

#include <atomic>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/fault_injection.h"
#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"
#include "testing/trace_fuzzer.h"

namespace mystique::testing {

namespace {

/// Distinct traces under churn: enough keys that a capacity-2 cache keeps
/// evicting (every fetch may consult disk), few enough that every key is
/// exercised by every thread.
constexpr int kCases = 3;

const prof::ProfilerTrace*
prof_of(const FuzzedCase& c)
{
    return c.use_prof ? &c.prof : nullptr;
}

} // namespace

ChurnReport
run_churn(const std::string& site, const std::string& store_dir, uint64_t seed,
          int threads, int ops_per_thread)
{
    ChurnReport rep;
    rep.site = site;

    std::vector<FuzzedCase> cases;
    cases.reserve(kCases);
    for (uint64_t i = 0; i < kCases; ++i)
        cases.push_back(generate_case(case_seed(seed, i)));

    // Capacity below the working set: the memory tier thrashes, so disk
    // loads, quarantines and writebacks happen continuously — not just once.
    core::PlanCache cache(2);
    cache.set_store_dir(store_dir);

    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();
    if (site == "pool.background_delay")
        fi.arm(site, 5, FaultMode::kDelay); // 5 ms stalls widen race windows
    else
        fi.arm(site, 3, FaultMode::kEvery); // every 3rd hit fails

    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> errs{0};
    std::mutex detail_mu;
    std::string first_detail;

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < ops_per_thread; ++i) {
                const FuzzedCase& c =
                    cases[static_cast<std::size_t>(t + i) % cases.size()];
                try {
                    const auto plan = cache.get_or_build(c.trace, prof_of(c), c.cfg);
                    // "Never a wrong plan": whatever tier served this — fresh
                    // build, memory hit, disk load after another thread's
                    // writeback — it must be a plan over *this* trace.
                    if (plan == nullptr ||
                        plan->trace().structural_fingerprint() !=
                            c.trace.structural_fingerprint())
                        throw std::runtime_error("cache returned a wrong plan");
                    // Interleave the cache's other mutating entry points so
                    // faults land during clears and flushes too.
                    if (t == 0 && i % 4 == 3)
                        cache.clear();
                    if (t == 1 && i % 5 == 4)
                        cache.flush_writebacks();
                } catch (const std::exception& e) {
                    ++errs;
                    std::lock_guard<std::mutex> lock(detail_mu);
                    if (first_detail.empty())
                        first_detail = std::string("thread ") + std::to_string(t) +
                                       " op " + std::to_string(i) + ": " + e.what();
                }
                ++ops;
            }
        });
    }
    for (std::thread& w : workers)
        w.join();

    rep.operations = ops.load();
    rep.exceptions = errs.load();
    rep.faults_fired = fi.total_fired(); // before disarm_all clears counters
    fi.disarm_all();

    // Heal pass: rebuild every key once (quarantined or never-persisted
    // entries get built and written back), then wait for the writebacks.
    cache.clear();
    for (const FuzzedCase& c : cases)
        cache.get_or_build(c.trace, prof_of(c), c.cfg);
    cache.flush_writebacks();

    // Assert pass: with the store healed, a fresh sweep must be pure disk
    // hits — zero builds.
    cache.clear();
    const uint64_t builds_before = cache.stats().builds;
    for (const FuzzedCase& c : cases)
        cache.get_or_build(c.trace, prof_of(c), c.cfg);
    cache.flush_writebacks();
    rep.heal_builds = cache.stats().builds - builds_before;
    rep.healed = rep.heal_builds == 0;

    // Directory audit: `.tmp.*` turds are forbidden on every failure path;
    // `.bad` quarantines are the designed outcome of unreadable entries.
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(store_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            ++rep.tmp_files;
        else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".bad") == 0)
            ++rep.quarantined;
    }

    if (!rep.ok() && rep.detail.empty()) {
        if (!first_detail.empty())
            rep.detail = first_detail;
        else if (rep.tmp_files > 0)
            rep.detail = std::to_string(rep.tmp_files) + " leftover .tmp.* file(s)";
        else if (!rep.healed)
            rep.detail = "store did not heal: " + std::to_string(rep.heal_builds) +
                         " build(s) on the post-heal sweep";
    }
    return rep;
}

ChurnReport
run_sweep_churn(const std::string& site, const std::string& store_dir, uint64_t seed,
                int drivers, int parallelism, int sweeps_per_driver)
{
    ChurnReport rep;
    rep.site = site;
    std::filesystem::create_directories(store_dir); // journal home

    // The swept database: each fuzzed trace added i+1 times, so groups carry
    // distinct population weights and the weighted mean exercises real
    // arithmetic, not a uniform average.
    std::vector<FuzzedCase> cases;
    cases.reserve(kCases);
    for (uint64_t i = 0; i < kCases; ++i)
        cases.push_back(generate_case(case_seed(seed, i)));
    et::TraceDatabase db;
    for (std::size_t i = 0; i < cases.size(); ++i)
        for (std::size_t copy = 0; copy <= i; ++copy)
            db.add(cases[i].trace);

    core::ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.iterations = 2;
    cfg.warmup_iterations = 1;
    cfg.opt_level = 1;

    FaultInjection& fi = FaultInjection::instance();
    fi.disarm_all();

    // Reference sweep with nothing armed and journaling off: the "heals"
    // contract compares against this bitwise.
    core::PlanCache ref_cache(8);
    ref_cache.set_store_dir("");
    core::ReplayDriver ref(cfg, &ref_cache, 1);
    ref.set_journal_dir(std::string());
    const core::DatabaseReplayResult want = ref.replay_groups(db);

    if (site == "pool.background_delay")
        fi.arm(site, 5, FaultMode::kDelay);
    else
        fi.arm(site, 3, FaultMode::kEvery); // every 3rd hit fails

    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> errs{0};
    std::mutex detail_mu;
    std::string first_detail;

    // Concurrent drivers share the journal directory — their publishes race
    // benignly (atomic rewrite, last writer wins) — while each drives its
    // own worker pool, so `drivers × parallelism` replay threads total.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(drivers));
    for (int d = 0; d < drivers; ++d) {
        workers.emplace_back([&, d] {
            try {
                core::PlanCache cache(8);
                cache.set_store_dir("");
                core::ReplayDriver driver(cfg, &cache,
                                          static_cast<std::size_t>(parallelism));
                driver.set_journal_dir(store_dir);
                driver.set_max_retries(1);
                driver.set_backoff_ms(0);
                for (int s = 0; s < sweeps_per_driver; ++s) {
                    const core::DatabaseReplayResult r = driver.replay_groups(db);
                    ops += r.groups.size();
                }
            } catch (const std::exception& e) {
                ++errs;
                std::lock_guard<std::mutex> lock(detail_mu);
                if (first_detail.empty())
                    first_detail = std::string("driver ") + std::to_string(d) +
                                   " threw: " + e.what();
            }
        });
    }
    for (std::thread& w : workers)
        w.join();

    rep.operations = ops.load();
    rep.exceptions = errs.load();
    rep.faults_fired = fi.total_fired(); // before disarm_all clears counters
    fi.disarm_all();

    // Heal pass 1: a probe sweep over the shared journal gives quarantined
    // fingerprints their healing attempt; with faults disarmed every group
    // must come back ok (fresh, resumed, or healed).
    core::PlanCache probe_cache(8);
    probe_cache.set_store_dir("");
    core::ReplayDriver probe(cfg, &probe_cache, 1);
    probe.set_journal_dir(store_dir);
    probe.set_probe_quarantined(true);
    const core::DatabaseReplayResult probed = probe.replay_groups(db);
    for (const core::GroupReplayResult& g : probed.groups) {
        if (g.status != core::GroupStatus::kOk)
            ++rep.heal_builds; // groups still sick after the probe
    }

    // Heal pass 2: churn must leave no residue in process-global state — a
    // fresh journal-less sweep is bit-identical to the pre-churn reference.
    core::PlanCache clean_cache(8);
    clean_cache.set_store_dir("");
    core::ReplayDriver clean(cfg, &clean_cache, 1);
    clean.set_journal_dir(std::string());
    const core::DatabaseReplayResult got = clean.replay_groups(db);
    bool identical = got.groups.size() == want.groups.size() &&
                     got.weighted_mean_iter_us == want.weighted_mean_iter_us;
    for (std::size_t i = 0; identical && i < got.groups.size(); ++i)
        identical = got.groups[i].result.iter_us == want.groups[i].result.iter_us;
    rep.healed = identical && rep.heal_builds == 0;

    // Directory audit: the journal publishes through atomic_write_file, so
    // `.tmp.*` staging turds are forbidden even with journal.write firing.
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(store_dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            ++rep.tmp_files;
        else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".bad") == 0)
            ++rep.quarantined;
    }

    if (!rep.ok() && rep.detail.empty()) {
        if (!first_detail.empty())
            rep.detail = first_detail;
        else if (rep.tmp_files > 0)
            rep.detail = std::to_string(rep.tmp_files) + " leftover .tmp.* file(s)";
        else if (rep.heal_builds > 0)
            rep.detail = std::to_string(rep.heal_builds) +
                         " group(s) still sick after the probe sweep";
        else if (!rep.healed)
            rep.detail = "post-churn sweep diverges from the pre-churn reference";
    }
    return rep;
}

ChurnReport
run_churn_site(const std::string& site, const std::string& store_dir, uint64_t seed)
{
    if (site.rfind("sweep.", 0) == 0 || site.rfind("journal.", 0) == 0)
        return run_sweep_churn(site, store_dir, seed);
    return run_churn(site, store_dir, seed);
}

std::vector<ChurnReport>
run_churn_all(const std::string& store_root, uint64_t seed, int threads,
              int ops_per_thread)
{
    std::vector<ChurnReport> reports;
    for (const std::string& site : fault_sites()) {
        std::string dir = store_root;
        // One subdirectory per site: audits stay independent.
        std::string sub = site;
        for (char& ch : sub)
            if (ch == '.')
                ch = '_';
        dir += "/" + sub;
        std::filesystem::create_directories(dir);
        if (site.rfind("sweep.", 0) == 0 || site.rfind("journal.", 0) == 0)
            reports.push_back(run_sweep_churn(site, dir, seed));
        else
            reports.push_back(run_churn(site, dir, seed, threads, ops_per_thread));
    }
    return reports;
}

} // namespace mystique::testing
