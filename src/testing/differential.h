#pragma once

/// @file
/// Differential oracle over fuzzed traces.
///
/// The fuzzer (testing/trace_fuzzer.h) supplies randomized-but-valid inputs;
/// this oracle supplies the *judgments* — properties the replay pipeline
/// promises for every trace, checked bitwise (never with tolerances, because
/// the simulator is deterministic and "close" would mask real divergence):
///
///  1. replay-vs-direct: a one-shot `Replayer(trace, prof, cfg)` (borrowed,
///     uncached plan) and a replay through a PlanCache-built plan produce
///     bit-identical results — the cache is an optimization, never a
///     behavior change.
///  2. opt-level invariance: plans built at opt_level 0 (verbatim) and 1
///     (fused/eliminated) replay to identical timelines, kernel for kernel.
///  3. plan JSON round-trip: `from_json(plan.to_json(), trace)` re-emits the
///     byte-identical document and carries the same key.
///  4. PlanKey stability: the key is a pure function of (trace, prof, cfg),
///     unchanged when the trace itself round-trips through JSON.
///  5. sweep parallelism (check_sweep): a ReplayDriver database sweep is
///     bit-identical at parallelism 1 and 4, and every group finishes with
///     GroupStatus ok — the resilient driver isolates per-group failures
///     instead of throwing, so the oracle must inspect statuses or a sick
///     group would hide inside two equally-degraded sweeps.
///  6. sweep resilience (check_sweep): a journaled sweep with retry knobs
///     engaged but nothing failing is bit-identical to the plain sweep, and
///     a restarted sweep resumes every group from the journal with the same
///     bit-exact weighted mean.
///  7. stream identity: the async multi-stream executor (MYST_ASYNC) issues
///     bit-identical per-stream kernel sequences to the serial walk — same
///     names, same counts per stream, same coverage — and the MYST_ASYNC=0
///     and =1 configs never alias to one PlanKey.  Timings/numerics are
///     out of scope across modes (async reseeds jitter per node); those are
///     checked bitwise *within* each mode by checks 1–5, which run under
///     the case's own randomized async_level.
///
/// Failures carry the generating seed and failing check name, so any report
/// reproduces with `mystique-fuzz --case <seed>`.

#include <cstdint>
#include <string>
#include <vector>

#include "testing/trace_fuzzer.h"

namespace mystique::testing {

/// Tally across an oracle's lifetime (the CLI summary line).
struct DiffCounters {
    uint64_t traces = 0;     ///< fuzzed cases examined
    uint64_t checks = 0;     ///< individual differential checks run
    uint64_t mismatches = 0; ///< checks that failed (== failures().size())
};

/// One failed check, reproducible from the seed alone.
struct DiffFailure {
    uint64_t seed = 0;
    std::string check;  ///< e.g. "replay-vs-direct", "opt-level"
    std::string detail; ///< first observed divergence
};

class DifferentialOracle {
  public:
    /// Runs checks 1–4 on one fuzzed case.  An exception thrown anywhere in
    /// a check (plan build refuses the trace, replay throws) is itself a
    /// failure — valid-by-construction traces must never crash the pipeline.
    void check_case(const FuzzedCase& c);

    /// Checks 5–6: sweeps the cases' traces as one database at parallelism 1
    /// and 4 and compares the merged results bitwise (requiring all-ok group
    /// statuses), then proves the resilience layer inert-when-unneeded and
    /// journal resume bit-exact.  Failures are recorded under the first
    /// case's seed (the sweep is a corpus-level property).
    void check_sweep(const std::vector<FuzzedCase>& cases);

    const DiffCounters& counters() const { return counters_; }
    const std::vector<DiffFailure>& failures() const { return failures_; }
    bool ok() const { return failures_.empty(); }

  private:
    /// Counts the check; detail.empty() = pass, else records a failure.
    void finish_check(uint64_t seed, const char* check, std::string detail);

    DiffCounters counters_;
    std::vector<DiffFailure> failures_;
};

} // namespace mystique::testing
