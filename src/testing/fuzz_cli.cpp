#include "testing/fuzz_cli.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define MYST_GETPID _getpid
#else
#include <unistd.h>
#define MYST_GETPID getpid
#endif

#include "common/fault_injection.h"
#include "testing/differential.h"
#include "testing/fault_churn.h"
#include "testing/trace_fuzzer.h"

namespace mystique::testing {

namespace {

std::optional<uint64_t>
parse_u64(const char* text)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return std::nullopt;
    return static_cast<uint64_t>(v);
}

uint64_t
default_iters(std::FILE* err, bool& bad)
{
    const char* env = std::getenv("MYST_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return 25;
    const std::optional<uint64_t> v = parse_u64(env);
    if (!v.has_value()) {
        std::fprintf(err, "mystique-fuzz: bad value for MYST_FUZZ_ITERS: '%s'\n", env);
        bad = true;
        return 25;
    }
    return *v;
}

void
print_usage(std::FILE* err, const char* prog)
{
    std::fprintf(err,
                 "usage: %s [--seed N] [--iters N] [--case S] [--churn] "
                 "[--churn-site SITE] [--churn-dir DIR]\n",
                 prog);
}

void
print_churn_report(std::FILE* out, const ChurnReport& r, uint64_t seed)
{
    if (!r.ok())
        std::fprintf(out, "FAIL churn site=%s seed=%llu: %s\n", r.site.c_str(),
                     static_cast<unsigned long long>(seed),
                     r.detail.empty() ? "contract violated" : r.detail.c_str());
    std::fprintf(out,
                 "churn site=%-22s ops=%llu fired=%llu leaked=%llu tmp=%llu "
                 "quarantined=%llu heal_builds=%llu %s\n",
                 r.site.c_str(), static_cast<unsigned long long>(r.operations),
                 static_cast<unsigned long long>(r.faults_fired),
                 static_cast<unsigned long long>(r.exceptions),
                 static_cast<unsigned long long>(r.tmp_files),
                 static_cast<unsigned long long>(r.quarantined),
                 static_cast<unsigned long long>(r.heal_builds),
                 r.ok() ? "ok" : "VIOLATED");
}

} // namespace

int
run_fuzz_cli(int argc, const char* const* argv, std::FILE* out, std::FILE* err)
{
    const char* prog = argc > 0 ? argv[0] : "mystique-fuzz";

    uint64_t base_seed = 7;
    bool bad_env = false;
    uint64_t iters = default_iters(err, bad_env);
    if (bad_env)
        return 2;
    bool have_case = false;
    uint64_t one_case = 0;
    bool churn = false;
    std::string churn_site;
    std::string churn_dir;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const bool has_value = i + 1 < argc;
        auto value = [&]() -> const char* { return argv[++i]; };
        auto numeric = [&](uint64_t& into) -> bool {
            if (!has_value) {
                std::fprintf(err, "mystique-fuzz: %s needs a value\n", arg);
                return false;
            }
            const char* text = value();
            const std::optional<uint64_t> v = parse_u64(text);
            if (!v.has_value()) {
                std::fprintf(err, "mystique-fuzz: bad value for %s: '%s'\n", arg, text);
                return false;
            }
            into = *v;
            return true;
        };
        if (std::strcmp(arg, "--seed") == 0) {
            if (!numeric(base_seed))
                return 2;
        } else if (std::strcmp(arg, "--iters") == 0) {
            if (!numeric(iters))
                return 2;
        } else if (std::strcmp(arg, "--case") == 0) {
            have_case = true;
            if (!numeric(one_case))
                return 2;
        } else if (std::strcmp(arg, "--churn") == 0) {
            churn = true;
        } else if (std::strcmp(arg, "--churn-site") == 0) {
            if (!has_value) {
                std::fprintf(err, "mystique-fuzz: %s needs a value\n", arg);
                return 2;
            }
            churn = true;
            churn_site = value();
        } else if (std::strcmp(arg, "--churn-dir") == 0) {
            if (!has_value) {
                std::fprintf(err, "mystique-fuzz: %s needs a value\n", arg);
                return 2;
            }
            churn_dir = value();
        } else {
            print_usage(err, prog);
            return 2;
        }
    }

    if (!churn_site.empty()) {
        const std::vector<std::string>& sites = fault_sites();
        if (std::find(sites.begin(), sites.end(), churn_site) == sites.end()) {
            std::fprintf(err, "mystique-fuzz: unknown fault site '%s' (see --help of "
                              "MYST_FAULT in docs/env_vars.md)\n",
                         churn_site.c_str());
            return 2;
        }
    }

    uint64_t faults_fired = 0;
    uint64_t faults_survived = 0;
    uint64_t churn_violations = 0;

    if (churn) {
        if (churn_dir.empty()) {
            churn_dir = (std::filesystem::temp_directory_path() /
                         ("mystique-fuzz-churn-" + std::to_string(MYST_GETPID())))
                            .string();
        }
        std::filesystem::create_directories(churn_dir);
        std::vector<ChurnReport> reports;
        if (!churn_site.empty())
            reports.push_back(run_churn_site(churn_site, churn_dir, base_seed));
        else
            reports = run_churn_all(churn_dir, base_seed);
        for (const ChurnReport& r : reports) {
            faults_fired += r.faults_fired;
            faults_survived += r.faults_fired;
            if (!r.ok()) {
                ++churn_violations;
                faults_survived -= r.faults_fired; // this site's faults broke through
            }
            print_churn_report(out, r, base_seed);
        }
        std::filesystem::remove_all(churn_dir);
    }

    DifferentialOracle oracle;
    if (!churn || have_case) {
        std::vector<FuzzedCase> cases;
        if (have_case) {
            cases.push_back(generate_case(one_case));
        } else {
            cases.reserve(iters);
            for (uint64_t i = 0; i < iters; ++i)
                cases.push_back(generate_case(case_seed(base_seed, i)));
        }
        for (const FuzzedCase& c : cases)
            oracle.check_case(c);
        oracle.check_sweep(cases);

        // The reproduce hint names the failing check too: a `--case <seed>`
        // rerun executes every check, so the pasted line must say which one
        // the report was about without the runner digging up this log again.
        for (const DiffFailure& f : oracle.failures())
            std::fprintf(out,
                         "FAIL case-seed=%llu check=%s: %s\n    reproduce: %s --case "
                         "%llu  (expect check=%s to fail)\n",
                         static_cast<unsigned long long>(f.seed), f.check.c_str(),
                         f.detail.c_str(), prog,
                         static_cast<unsigned long long>(f.seed), f.check.c_str());
    }

    const DiffCounters& n = oracle.counters();
    const bool ok = oracle.ok() && churn_violations == 0;
    std::fprintf(out,
                 "mystique-fuzz: traces=%llu checks=%llu mismatches=%llu "
                 "faults_fired=%llu faults_survived=%llu status=%s\n",
                 static_cast<unsigned long long>(n.traces),
                 static_cast<unsigned long long>(n.checks),
                 static_cast<unsigned long long>(n.mismatches),
                 static_cast<unsigned long long>(faults_fired),
                 static_cast<unsigned long long>(faults_survived),
                 ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace mystique::testing
