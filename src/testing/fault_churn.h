#pragma once

/// @file
/// Fault-injection churn: the durability half of the robustness harness.
///
/// For one registered fault site (common/fault_injection.h), run_churn()
/// hammers a private two-tier PlanCache from N threads — get_or_build /
/// clear / flush_writebacks over fuzzed traces — while the site fires
/// repeatedly, then disarms and verifies the full recovery contract:
///
///  - **never a crash**: no injected fault escapes the cache API as an
///    exception (writeback failures are absorbed, unreadable entries
///    quarantine and rebuild);
///  - **never a torn file**: the store directory holds zero `.tmp.*` files
///    afterwards (`.bad` quarantines are legitimate);
///  - **never a wrong plan**: every plan fetched during churn replays the
///    same trace it was requested for (key identity is re-checked);
///  - **heals**: after one clean rebuild pass, a fresh sweep of every key is
///    served entirely from disk — builds == 0.
///
/// The sweep-resilience sites (`sweep.group`, `journal.write`,
/// `journal.load`) are exercised by a second harness, run_sweep_churn():
/// concurrent ReplayDrivers sweeping a fuzzed database while the site fires,
/// with the analogous contract (no escape, no torn journal, bit-identical
/// heal).  run_churn_site()/run_churn_all() dispatch each site to the harness
/// that actually reaches it.
///
/// Shared by tests/testing/fault_churn_test.cpp and `mystique-fuzz --churn`.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique::testing {

/// Outcome of one site's churn run.
struct ChurnReport {
    std::string site;
    uint64_t operations = 0;   ///< cache fetches completed across all threads
    uint64_t faults_fired = 0; ///< injections this run actually triggered
    uint64_t exceptions = 0;   ///< faults that leaked out of the cache API
    uint64_t tmp_files = 0;    ///< leftover `.tmp.*` turds in the store dir
    uint64_t quarantined = 0;  ///< `.bad` files (allowed; informational)
    uint64_t heal_builds = 0;  ///< builds during the post-heal clean sweep
    bool healed = false;       ///< clean sweep was all disk hits
    std::string detail;        ///< first failure description when !ok()

    bool ok() const { return exceptions == 0 && tmp_files == 0 && healed; }
};

/// Churns @p site over a PlanCache persisted at @p store_dir.  @p seed feeds
/// the trace fuzzer (distinct traces per run are derived from it), so a
/// failing (site, seed) pair reproduces exactly.  Arms the site itself and
/// disarms all sites on return.
ChurnReport run_churn(const std::string& site, const std::string& store_dir,
                      uint64_t seed, int threads = 8, int ops_per_thread = 12);

/// Churns @p site through ReplayDriver database sweeps instead of raw cache
/// traffic — the harness for the sweep-resilience sites (`sweep.group`,
/// `journal.write`, `journal.load`).  @p drivers concurrent drivers, each
/// sweeping a fuzzed database at @p parallelism workers (default 2×4 = 8
/// replay threads) with retries enabled and a shared journal at @p store_dir,
/// while the armed site fires.  The contract mapped onto ChurnReport:
///
///  - **never a crash**: replay_groups absorbs every injected fault
///    (`exceptions` counts escapes);
///  - **never a torn file**: no `.tmp.*` turds next to the journal;
///  - **heals**: after disarming, a fresh no-journal sweep is bit-identical
///    to a reference sweep taken before arming, and a probe sweep over the
///    (possibly quarantined) journal ends with every group ok.
///    `heal_builds` counts the groups still sick after the probe.
ChurnReport run_sweep_churn(const std::string& site, const std::string& store_dir,
                            uint64_t seed, int drivers = 2, int parallelism = 4,
                            int sweeps_per_driver = 3);

/// Dispatches @p site to the harness that exercises it: sweep-resilience
/// sites (`sweep.*`, `journal.*`) go through run_sweep_churn, everything
/// else through run_churn.
ChurnReport run_churn_site(const std::string& site, const std::string& store_dir,
                           uint64_t seed);

/// run_churn_site() over every registered fault site; each site gets a
/// private subdirectory of @p store_root.
std::vector<ChurnReport> run_churn_all(const std::string& store_root, uint64_t seed,
                                       int threads = 8, int ops_per_thread = 12);

} // namespace mystique::testing
