#pragma once

/// @file
/// Fault-injection churn: the durability half of the robustness harness.
///
/// For one registered fault site (common/fault_injection.h), run_churn()
/// hammers a private two-tier PlanCache from N threads — get_or_build /
/// clear / flush_writebacks over fuzzed traces — while the site fires
/// repeatedly, then disarms and verifies the full recovery contract:
///
///  - **never a crash**: no injected fault escapes the cache API as an
///    exception (writeback failures are absorbed, unreadable entries
///    quarantine and rebuild);
///  - **never a torn file**: the store directory holds zero `.tmp.*` files
///    afterwards (`.bad` quarantines are legitimate);
///  - **never a wrong plan**: every plan fetched during churn replays the
///    same trace it was requested for (key identity is re-checked);
///  - **heals**: after one clean rebuild pass, a fresh sweep of every key is
///    served entirely from disk — builds == 0.
///
/// Shared by tests/testing/fault_churn_test.cpp and `mystique-fuzz --churn`.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique::testing {

/// Outcome of one site's churn run.
struct ChurnReport {
    std::string site;
    uint64_t operations = 0;   ///< cache fetches completed across all threads
    uint64_t faults_fired = 0; ///< injections this run actually triggered
    uint64_t exceptions = 0;   ///< faults that leaked out of the cache API
    uint64_t tmp_files = 0;    ///< leftover `.tmp.*` turds in the store dir
    uint64_t quarantined = 0;  ///< `.bad` files (allowed; informational)
    uint64_t heal_builds = 0;  ///< builds during the post-heal clean sweep
    bool healed = false;       ///< clean sweep was all disk hits
    std::string detail;        ///< first failure description when !ok()

    bool ok() const { return exceptions == 0 && tmp_files == 0 && healed; }
};

/// Churns @p site over a PlanCache persisted at @p store_dir.  @p seed feeds
/// the trace fuzzer (distinct traces per run are derived from it), so a
/// failing (site, seed) pair reproduces exactly.  Arms the site itself and
/// disarms all sites on return.
ChurnReport run_churn(const std::string& site, const std::string& store_dir,
                      uint64_t seed, int threads = 8, int ops_per_thread = 12);

/// run_churn() over every registered fault site; each site gets a private
/// subdirectory of @p store_root.
std::vector<ChurnReport> run_churn_all(const std::string& store_root, uint64_t seed,
                                       int threads = 8, int ops_per_thread = 12);

} // namespace mystique::testing
