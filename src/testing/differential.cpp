#include "testing/differential.h"

#include <exception>
#include <filesystem>
#include <map>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define MYST_GETPID _getpid
#else
#include <unistd.h>
#define MYST_GETPID getpid
#endif

#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "core/replayer.h"
#include "et/trace_db.h"

namespace mystique::testing {

namespace {

using core::PlanCache;
using core::ReplayConfig;
using core::ReplayDriver;
using core::Replayer;
using core::ReplayResult;

/// Kernel events of @p r grouped per stream, preserving launch order within
/// each stream.  Ordered by stream id so comparisons never depend on which
/// stream happened to launch first.
std::map<int, std::vector<const prof::KernelEvent*>>
kernels_by_stream(const ReplayResult& r)
{
    std::map<int, std::vector<const prof::KernelEvent*>> by_stream;
    for (const prof::KernelEvent& ev : r.prof.kernels())
        by_stream[ev.stream].push_back(&ev);
    return by_stream;
}

/// Bitwise ReplayResult comparison; returns "" on equality, else the first
/// divergence.  Exact double equality is intentional — see the file comment.
///
/// Kernel events are compared as *per-stream* (name, ts, dur) sequences plus
/// the total count, not as one global sequence: the async executor's
/// cross-stream interleaving is schedule-dependent (opt_level changes the
/// unit structure and therefore which stream's kernel is recorded first),
/// while per-stream order and timing are the invariants the executor
/// actually promises.  For serial replays the two formulations are
/// equivalent, so nothing is weakened for the pre-async checks.
///
/// @param compare_digest  when false, the numeric digests are not compared —
///   used by the opt-level check, where dead-code elimination legitimately
///   skips computing outputs nothing reads, so final bindings differ across
///   opt levels by design while timelines must not.
std::string
compare_results(const ReplayResult& a, const ReplayResult& b, bool compare_digest = true)
{
    std::ostringstream why;
    if (a.iter_us != b.iter_us) {
        why << "iter_us diverge (" << a.iter_us.size() << " vs " << b.iter_us.size()
            << " iterations";
        for (std::size_t i = 0; i < a.iter_us.size() && i < b.iter_us.size(); ++i) {
            if (a.iter_us[i] != b.iter_us[i]) {
                why << "; first at iter " << i << ": " << a.iter_us[i] << " vs "
                    << b.iter_us[i];
                break;
            }
        }
        why << ")";
        return why.str();
    }
    if (a.mean_iter_us != b.mean_iter_us)
        return "mean_iter_us diverges";
    if (a.prof.kernels().size() != b.prof.kernels().size()) {
        why << "kernel count " << a.prof.kernels().size() << " vs "
            << b.prof.kernels().size();
        return why.str();
    }
    const auto sa = kernels_by_stream(a);
    const auto sb = kernels_by_stream(b);
    if (sa.size() != sb.size()) {
        why << "stream count " << sa.size() << " vs " << sb.size();
        return why.str();
    }
    for (auto ia = sa.begin(), ib = sb.begin(); ia != sa.end(); ++ia, ++ib) {
        if (ia->first != ib->first) {
            why << "stream sets diverge (s" << ia->first << " vs s" << ib->first << ")";
            return why.str();
        }
        if (ia->second.size() != ib->second.size()) {
            why << "stream " << ia->first << " kernel count " << ia->second.size()
                << " vs " << ib->second.size();
            return why.str();
        }
        for (std::size_t i = 0; i < ia->second.size(); ++i) {
            const prof::KernelEvent& x = *ia->second[i];
            const prof::KernelEvent& y = *ib->second[i];
            if (x.name != y.name || x.ts != y.ts || x.dur != y.dur) {
                why << "stream " << ia->first << " kernel " << i << " diverges: "
                    << x.name << "@" << x.ts << "+" << x.dur << " vs " << y.name << "@"
                    << y.ts << "+" << y.dur;
                return why.str();
            }
        }
    }
    if (a.coverage.selected_ops != b.coverage.selected_ops ||
        a.coverage.supported_ops != b.coverage.supported_ops)
        return "coverage diverges";
    if (compare_digest && a.numeric_digest != b.numeric_digest)
        return "numeric digest diverges";
    return {};
}

/// Mode-independent comparison for the stream-identity check (serial vs
/// async replay of one case): both executors must issue bit-identical
/// per-stream kernel *name* sequences, equal per-stream and total counts,
/// equal iteration counts and equal coverage.  Timestamps, durations and
/// numeric digests are deliberately excluded here: async mode reseeds the
/// RNG per node (launch jitter and rng-consuming ops draw different values
/// than the serial sequential stream), so timing and numerics diverge across
/// modes by design — the schedule-shaped facts must not.
std::string
compare_stream_sequences(const ReplayResult& serial, const ReplayResult& overlapped)
{
    std::ostringstream why;
    if (serial.iter_us.size() != overlapped.iter_us.size()) {
        why << "iteration count " << serial.iter_us.size() << " vs "
            << overlapped.iter_us.size();
        return why.str();
    }
    if (serial.prof.kernels().size() != overlapped.prof.kernels().size()) {
        why << "kernel count " << serial.prof.kernels().size() << " vs "
            << overlapped.prof.kernels().size();
        return why.str();
    }
    const auto ss = kernels_by_stream(serial);
    const auto so = kernels_by_stream(overlapped);
    if (ss.size() != so.size()) {
        why << "stream count " << ss.size() << " vs " << so.size();
        return why.str();
    }
    for (auto is = ss.begin(), io = so.begin(); is != ss.end(); ++is, ++io) {
        if (is->first != io->first) {
            why << "stream sets diverge (s" << is->first << " vs s" << io->first << ")";
            return why.str();
        }
        if (is->second.size() != io->second.size()) {
            why << "stream " << is->first << " kernel count " << is->second.size()
                << " vs " << io->second.size();
            return why.str();
        }
        for (std::size_t i = 0; i < is->second.size(); ++i) {
            if (is->second[i]->name != io->second[i]->name) {
                why << "stream " << is->first << " kernel " << i << " diverges: "
                    << is->second[i]->name << " vs " << io->second[i]->name;
                return why.str();
            }
        }
    }
    if (serial.coverage.selected_ops != overlapped.coverage.selected_ops ||
        serial.coverage.supported_ops != overlapped.coverage.supported_ops)
        return "coverage diverges";
    return {};
}

const prof::ProfilerTrace*
prof_of(const FuzzedCase& c)
{
    return c.use_prof ? &c.prof : nullptr;
}

/// "" when every group of @p r finished ok; else the first sick group's
/// status and error, labelled with @p which sweep it came from.
std::string
all_groups_ok(const core::DatabaseReplayResult& r, const char* which)
{
    for (std::size_t i = 0; i < r.groups.size(); ++i) {
        const core::GroupReplayResult& g = r.groups[i];
        if (g.status == core::GroupStatus::kOk)
            continue;
        std::ostringstream why;
        why << which << " sweep group " << i << " is " << core::to_string(g.status);
        if (!g.error.empty())
            why << ": " << g.error;
        return why.str();
    }
    return {};
}

} // namespace

void
DifferentialOracle::finish_check(uint64_t seed, const char* check, std::string detail)
{
    ++counters_.checks;
    if (detail.empty())
        return;
    ++counters_.mismatches;
    failures_.push_back({seed, check, std::move(detail)});
}

void
DifferentialOracle::check_case(const FuzzedCase& c)
{
    ++counters_.traces;

    // 4. PlanKey stability: pure function of inputs, invariant under a trace
    // JSON round-trip (the fingerprint contract of et/trace.h).
    finish_check(c.seed, "plan-key", [&]() -> std::string {
        try {
            const core::PlanKey k1 = core::plan_key(c.trace, prof_of(c), c.cfg);
            const core::PlanKey k2 = core::plan_key(c.trace, prof_of(c), c.cfg);
            if (k1 != k2)
                return "plan_key not deterministic across calls";
            const et::ExecutionTrace round = et::ExecutionTrace::from_json(c.trace.to_json());
            if (round.structural_fingerprint() != c.trace.structural_fingerprint())
                return "structural fingerprint changed across trace JSON round-trip";
            if (core::plan_key(round, prof_of(c), c.cfg) != k1)
                return "plan key changed across trace JSON round-trip";
            return {};
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());

    // 3. Plan JSON round-trip fidelity: byte-identical re-serialization and
    // an unchanged key.
    finish_check(c.seed, "plan-roundtrip", [&]() -> std::string {
        try {
            const auto plan = core::ReplayPlan::build(c.trace, prof_of(c), c.cfg);
            const Json j = plan->to_json();
            const auto restored = core::ReplayPlan::from_json(j, c.trace);
            if (restored->key() != plan->key())
                return "restored plan carries a different key";
            if (restored->to_json().dump() != j.dump())
                return "restored plan re-serializes differently";
            return {};
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());

    // 1. Replay-vs-direct: borrowed one-shot plan vs PlanCache-built plan.
    // The cache is private with the disk tier pinned off, so an ambient
    // MYST_PLAN_CACHE_DIR cannot leak foreign entries into the comparison.
    finish_check(c.seed, "replay-vs-direct", [&]() -> std::string {
        try {
            const ReplayResult direct = Replayer(c.trace, prof_of(c), c.cfg).run();
            PlanCache cache(4);
            cache.set_store_dir("");
            const auto plan = cache.get_or_build(c.trace, prof_of(c), c.cfg);
            const ReplayResult cached = Replayer(plan, c.cfg).run();
            return compare_results(direct, cached);
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());

    // 2. Opt-level invariance: fused/eliminated plans replay the verbatim
    // timeline, kernel for kernel (plan_optimizer contract).
    finish_check(c.seed, "opt-level", [&]() -> std::string {
        try {
            ReplayConfig cfg0 = c.cfg;
            cfg0.opt_level = 0;
            ReplayConfig cfg1 = c.cfg;
            cfg1.opt_level = 1;
            const ReplayResult r0 = Replayer(c.trace, prof_of(c), cfg0).run();
            const ReplayResult r1 = Replayer(c.trace, prof_of(c), cfg1).run();
            // Digests excluded: dead-code elimination skips computing
            // outputs nothing reads, so final bindings differ across opt
            // levels by design while the timelines must not.
            std::string diff = compare_results(r0, r1, /*compare_digest=*/false);
            if (!diff.empty())
                diff = "opt_level 0 vs 1: " + diff;
            return diff;
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());

    // 7. Stream identity: the async executor issues every stream's kernel
    // sequence exactly as the serial walk does, and the executor mode is
    // part of the plan's identity — an MYST_ASYNC=0 plan and an =1 plan must
    // never alias in the PlanCache (they carry different dependency-graph
    // expectations and different jitter seeding).
    finish_check(c.seed, "stream-identity", [&]() -> std::string {
        try {
            ReplayConfig serial_cfg = c.cfg;
            serial_cfg.async_level = 0;
            ReplayConfig async_cfg = c.cfg;
            async_cfg.async_level = 1;
            if (serial_cfg.fingerprint() == async_cfg.fingerprint())
                return "MYST_ASYNC=0 and =1 configs alias to one fingerprint";
            if (core::plan_key(c.trace, prof_of(c), serial_cfg) ==
                core::plan_key(c.trace, prof_of(c), async_cfg))
                return "MYST_ASYNC=0 and =1 plans alias to one PlanKey";
            const ReplayResult rs = Replayer(c.trace, prof_of(c), serial_cfg).run();
            const ReplayResult ra = Replayer(c.trace, prof_of(c), async_cfg).run();
            std::string diff = compare_stream_sequences(rs, ra);
            if (!diff.empty())
                diff = "serial vs async: " + diff;
            return diff;
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());
}

void
DifferentialOracle::check_sweep(const std::vector<FuzzedCase>& cases)
{
    if (cases.empty())
        return;
    const uint64_t seed = cases.front().seed;

    finish_check(seed, "sweep-parallelism", [&]() -> std::string {
        try {
            et::TraceDatabase db;
            std::vector<const prof::ProfilerTrace*> profs;
            for (const FuzzedCase& c : cases) {
                db.add(c.trace);
                profs.push_back(prof_of(c));
            }

            // One config for the whole sweep (the driver replays every group
            // under it); the per-case configs already got their coverage in
            // check_case.
            ReplayConfig cfg;
            cfg.mode = fw::ExecMode::kShapeOnly;
            cfg.iterations = 2;
            cfg.warmup_iterations = 1;
            cfg.opt_level = 1;

            PlanCache cache_seq(64), cache_par(64);
            cache_seq.set_store_dir("");
            cache_par.set_store_dir("");
            ReplayDriver seq(cfg, &cache_seq, 1);
            ReplayDriver par(cfg, &cache_par, 4);
            // Pin journaling off (an ambient MYST_SWEEP_JOURNAL would let a
            // prior run's journal substitute for replaying).
            seq.set_journal_dir(std::string());
            par.set_journal_dir(std::string());
            const auto a = seq.replay_groups(db, db.size(), &profs);
            const auto b = par.replay_groups(db, db.size(), &profs);

            // Valid-by-construction traces must sweep clean: the resilient
            // driver isolates failures instead of throwing, so a sick group
            // would otherwise hide inside a "passing" comparison of two
            // equally-degraded sweeps.  (This also makes an armed sweep.group
            // fault a deterministic CLI failure — the fuzz-cli tests rely on
            // that.)
            std::string sick = all_groups_ok(a, "K=1");
            if (sick.empty())
                sick = all_groups_ok(b, "K=4");
            if (!sick.empty())
                return sick;

            if (a.weighted_mean_iter_us != b.weighted_mean_iter_us)
                return "weighted mean diverges between K=1 and K=4";
            if (a.groups.size() != b.groups.size())
                return "group count diverges between K=1 and K=4";
            for (std::size_t i = 0; i < a.groups.size(); ++i) {
                if (a.groups[i].representative != b.groups[i].representative)
                    return "group " + std::to_string(i) + " representative diverges";
                std::string diff =
                    compare_results(a.groups[i].result, b.groups[i].result);
                if (!diff.empty())
                    return "group " + std::to_string(i) + " (K=1 vs K=4): " + diff;
            }
            return {};
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());

    // 6. Sweep resilience: with the resilience knobs engaged but nothing
    // failing, a journaled sweep is bit-identical to the plain one, and a
    // restarted sweep resumes every group from the journal — restoring the
    // same bit-exact weighted mean without replaying anything.
    finish_check(seed, "sweep-resilience", [&]() -> std::string {
        namespace fs = std::filesystem;
        const fs::path dir =
            fs::temp_directory_path() /
            ("mystique-diff-journal-" + std::to_string(MYST_GETPID()) + "-" +
             std::to_string(seed));
        std::error_code ec;
        fs::remove_all(dir, ec);
        fs::create_directories(dir);
        struct DirCleanup {
            const fs::path& dir;
            ~DirCleanup()
            {
                std::error_code ec2;
                fs::remove_all(dir, ec2);
            }
        } cleanup{dir};
        try {
            et::TraceDatabase db;
            std::vector<const prof::ProfilerTrace*> profs;
            for (const FuzzedCase& c : cases) {
                db.add(c.trace);
                profs.push_back(prof_of(c));
            }
            ReplayConfig cfg;
            cfg.mode = fw::ExecMode::kShapeOnly;
            cfg.iterations = 2;
            cfg.warmup_iterations = 1;
            cfg.opt_level = 1;

            PlanCache cache_plain(64), cache_res(64), cache_resume(64);
            cache_plain.set_store_dir("");
            cache_res.set_store_dir("");
            cache_resume.set_store_dir("");

            ReplayDriver plain(cfg, &cache_plain, 1);
            plain.set_journal_dir(std::string());
            const auto want = plain.replay_groups(db, db.size(), &profs);

            ReplayDriver resilient(cfg, &cache_res, 4);
            resilient.set_journal_dir(dir.string());
            resilient.set_max_retries(2);
            resilient.set_backoff_ms(0);
            const auto got = resilient.replay_groups(db, db.size(), &profs);

            std::string sick = all_groups_ok(got, "resilient");
            if (!sick.empty())
                return sick;
            if (got.retries != 0)
                return "no-fault resilient sweep consumed retries";
            if (got.weighted_mean_iter_us != want.weighted_mean_iter_us)
                return "resilience knobs changed the weighted mean";
            if (got.groups.size() != want.groups.size())
                return "resilience knobs changed the group count";
            for (std::size_t i = 0; i < got.groups.size(); ++i) {
                std::string diff =
                    compare_results(want.groups[i].result, got.groups[i].result);
                if (!diff.empty())
                    return "group " + std::to_string(i) + " (plain vs resilient): " + diff;
            }

            ReplayDriver resumed(cfg, &cache_resume, 1);
            resumed.set_journal_dir(dir.string());
            const auto again = resumed.replay_groups(db, db.size(), &profs);
            if (again.journal_resumed != again.groups.size())
                return "restarted sweep replayed instead of resuming (" +
                       std::to_string(again.journal_resumed) + "/" +
                       std::to_string(again.groups.size()) + " from journal)";
            if (again.weighted_mean_iter_us != want.weighted_mean_iter_us)
                return "journal-restored weighted mean is not bit-identical";
            return {};
        } catch (const std::exception& e) {
            return std::string("threw: ") + e.what();
        }
    }());
}

} // namespace mystique::testing
