#include "testing/trace_fuzzer.h"

#include <memory>
#include <vector>

#include "comm/process_group.h"
#include "common/rng.h"
#include "framework/functional.h"
#include "framework/nn.h"
#include "framework/session.h"
#include "workloads/input_gen.h"

namespace mystique::testing {

namespace {

/// splitmix64 finalizer — decorrelates neighboring corpus indices and keeps
/// `--seed N` and `--seed N+1` from generating near-identical programs.
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// One step of the random program.  kChain is the fusion-legality stressor:
/// runs of unary/binary pointwise ops of random length, exactly what the plan
/// optimizer tries to fuse (and must not fuse across non-pointwise breaks).
struct Instr {
    enum Kind { kChain, kLinear, kMm, kEmbedding, kScope, kCollective };
    Kind kind = kChain;
    std::vector<int> chain; ///< pointwise op selectors (kChain / kScope)
    int layer = 0;          ///< linear-layer index (kLinear)
    int collective = 0;     ///< 0 = all_reduce, 1 = all_to_all (kCollective)
    std::string scope_name; ///< wrapper name (kScope)
};

/// Everything generate_case() derives from the seed, fixed before any
/// Session exists.  A single Rng stream with a fixed draw order makes the
/// whole spec — and therefore the recorded trace — a pure function of seed.
struct Spec {
    fw::ExecMode mode = fw::ExecMode::kNumeric;
    int64_t batch = 4;
    int64_t hidden = 8;
    int n_layers = 0; ///< pre-created Linear layers available to kLinear
    bool use_embedding = false;
    int64_t rows = 64;
    bool use_collective = false;
    bool use_backward = false;
    std::vector<Instr> instrs;

    // Replay-config axes.
    bool filter_subtrace = false;
    int only_category = -1; ///< -1 = none, else dev::OpCategory ordinal
    int emulate_world_size = 0;
    bool use_prof = true;
    uint64_t session_seed = 0;
    uint64_t replay_seed = 0;

    // Multi-stream replay axes: how many compute streams the recorded
    // profiler trace is spread over (1 = leave the recording alone), the
    // salt decorrelating the correlation→stream map, and the executor mode
    // the case replays under.
    int n_streams = 1;
    uint64_t stream_salt = 0;
    int async_level = 1;
};

Spec
derive_spec(uint64_t seed)
{
    Rng rng(mix64(seed));
    Spec spec;

    // Numeric mode runs real math, so keep tensors small; shape-only mode
    // costs nothing per element, so let shapes roam to vary kernel timing.
    spec.mode = rng.uniform() < 0.5 ? fw::ExecMode::kNumeric : fw::ExecMode::kShapeOnly;
    const bool numeric = spec.mode == fw::ExecMode::kNumeric;
    spec.batch = rng.uniform_int(2, numeric ? 6 : 48);
    spec.hidden = rng.uniform_int(2, numeric ? 12 : 64);
    spec.n_layers = static_cast<int>(rng.uniform_int(0, 3));
    spec.use_embedding = rng.uniform() < 0.4;
    spec.rows = rng.uniform_int(16, 256);
    spec.use_collective = rng.uniform() < 0.35;

    const int n_instr = static_cast<int>(rng.uniform_int(2, 9));
    bool has_collective = false;
    for (int i = 0; i < n_instr; ++i) {
        Instr instr;
        const double pick = rng.uniform();
        if (pick < 0.40) {
            instr.kind = Instr::kChain;
        } else if (pick < 0.55 && spec.n_layers > 0) {
            instr.kind = Instr::kLinear;
            instr.layer = static_cast<int>(rng.uniform_int(0, spec.n_layers - 1));
        } else if (pick < 0.65) {
            instr.kind = Instr::kMm;
        } else if (pick < 0.75 && spec.use_embedding) {
            instr.kind = Instr::kEmbedding;
        } else if (pick < 0.85 && spec.use_collective) {
            instr.kind = Instr::kCollective;
            instr.collective = static_cast<int>(rng.uniform_int(0, 1));
            has_collective = true;
        } else {
            instr.kind = Instr::kScope;
            instr.scope_name = "## blk" + std::to_string(i) + " ##";
        }
        if (instr.kind == Instr::kChain || instr.kind == Instr::kScope) {
            const int len = static_cast<int>(rng.uniform_int(1, 8));
            for (int j = 0; j < len; ++j)
                instr.chain.push_back(static_cast<int>(rng.uniform_int(0, 5)));
        }
        spec.instrs.push_back(std::move(instr));
    }
    spec.use_collective = has_collective; // only pay the fabric when used

    // Autograd doubles the op stream (tape walk on the autograd thread).
    // Collectives stay forward-only here: c10d ops don't register tape
    // entries, so a backward through one would find no graph past it.
    spec.use_backward = rng.uniform() < 0.5 && !has_collective;

    spec.filter_subtrace = rng.uniform() < 0.25;
    const double cat = rng.uniform();
    if (cat < 0.10)
        spec.only_category = static_cast<int>(dev::OpCategory::kATen);
    else if (cat < 0.18 && has_collective)
        spec.only_category = static_cast<int>(dev::OpCategory::kComm);
    spec.emulate_world_size = has_collective && rng.uniform() < 0.3 ? -1 : 0;
    spec.use_prof = rng.uniform() < 0.75;
    spec.session_seed = rng.next_u64();
    spec.replay_seed = rng.next_u64();

    // Multi-stream coverage: half the corpus spreads its compute kernels
    // over 2–4 streams (the async executor's scheduling surface — the remap
    // creates cross-stream def-use dependencies, and any collectives stay on
    // the comm stream interleaved with compute); executor mode alternates so
    // every differential check runs against both walks across the corpus.
    spec.n_streams = rng.uniform() < 0.5 ? static_cast<int>(rng.uniform_int(2, 4)) : 1;
    spec.stream_salt = rng.next_u64();
    spec.async_level = rng.uniform() < 0.5 ? 1 : 0;
    return spec;
}

/// Pre-created model state (parameters must exist before the observer
/// attaches, like any real workload's setup phase).
struct Model {
    std::vector<fw::nn::Linear> layers;
    fw::Tensor mm_weight;
    fw::Tensor operand; ///< second input for binary pointwise ops
    fw::Tensor table;   ///< embedding rows (when used)
};

Model
build_model(fw::Session& s, const Spec& spec)
{
    Model m;
    for (int i = 0; i < spec.n_layers; ++i)
        m.layers.emplace_back(s, spec.hidden, spec.hidden);
    m.mm_weight = fw::nn::make_parameter(s, {spec.hidden, spec.hidden});
    m.operand = fw::nn::make_parameter(s, {spec.batch, spec.hidden});
    if (spec.use_embedding)
        m.table = fw::nn::make_parameter(s, {spec.rows, spec.hidden});
    return m;
}

/// One iteration of the random program — shared verbatim between the warmup
/// and the recorded iteration, as real harnesses do (workloads/harness.cpp).
void
run_iteration(fw::Session& s, const Spec& spec, Model& m)
{
    fw::RecordFunction root(s, "## fuzz ##");
    fw::Tensor x = fw::F::to_device(s, wl::host_float(s, {spec.batch, spec.hidden}));

    auto chain = [&](const std::vector<int>& ops) {
        for (int op : ops) {
            switch (op) {
            case 0: x = fw::F::relu(s, x); break;
            case 1: x = fw::F::sigmoid(s, x); break;
            case 2: x = fw::F::tanh(s, x); break;
            case 3: x = fw::F::add(s, x, m.operand); break;
            case 4: x = fw::F::mul(s, x, m.operand); break;
            default: x = fw::F::add(s, x, x, 0.5); break;
            }
        }
    };

    for (const Instr& instr : spec.instrs) {
        switch (instr.kind) {
        case Instr::kChain:
            chain(instr.chain);
            break;
        case Instr::kLinear:
            x = m.layers[static_cast<std::size_t>(instr.layer)].forward(s, x);
            break;
        case Instr::kMm:
            x = fw::F::mm(s, x, m.mm_weight);
            break;
        case Instr::kEmbedding: {
            fw::Tensor idx = wl::host_indices(s, spec.batch * 4, spec.rows);
            fw::Tensor off = wl::host_offsets(s, spec.batch, idx.numel());
            fw::Tensor pooled = fw::F::embedding_bag(s, m.table, fw::F::to_device(s, idx),
                                                     fw::F::to_device(s, off));
            x = fw::F::add(s, x, pooled);
            break;
        }
        case Instr::kScope: {
            fw::RecordFunction rf(s, instr.scope_name);
            chain(instr.chain);
            break;
        }
        case Instr::kCollective:
            x = instr.collective == 0 ? fw::F::all_reduce(s, x, 0)
                                      : fw::F::all_to_all(s, x, 0);
            break;
        }
    }

    if (spec.use_backward) {
        fw::Tensor loss = s.call_t(MYST_OP("aten::mean"), {fw::IValue(x)});
        s.backward(loss);
    }
}

/// Rewrites compute-kernel stream ids through a randomized correlation→
/// stream map over a small palette, leaving collectives and memcpys on their
/// recorded streams.  The remap is what turns a single-stream recording into
/// a *multi-stream* replay: the plan's op→stream assignment (§4.5) follows
/// the profiler trace, so replayed kernels spread across streams and def-use
/// edges start crossing them — exactly the scheduling surface the async
/// executor has to get right.  Same correlation → same stream keeps all of
/// one op's kernels together, mirroring real per-op stream placement.
prof::ProfilerTrace
spread_compute_streams(const prof::ProfilerTrace& in, int n_streams, uint64_t salt)
{
    static constexpr int kPalette[] = {dev::kComputeStream, 9, 11, 13};
    prof::ProfilerTrace out;
    for (const prof::CpuOpEvent& ev : in.cpu_ops())
        out.add_cpu_op(ev);
    for (prof::KernelEvent ev : in.kernels()) {
        if (ev.stream == dev::kComputeStream) {
            const uint64_t slot = mix64(salt ^ static_cast<uint64_t>(ev.correlation));
            ev.stream = kPalette[slot % static_cast<uint64_t>(n_streams)];
        }
        out.add_kernel(std::move(ev));
    }
    return out;
}

} // namespace

uint64_t
case_seed(uint64_t base_seed, uint64_t index)
{
    return mix64(base_seed + 0x632BE59BD9B4E019ull * (index + 1));
}

FuzzedCase
generate_case(uint64_t seed)
{
    const Spec spec = derive_spec(seed);

    fw::SessionOptions opts;
    opts.mode = spec.mode;
    opts.seed = spec.session_seed;
    fw::Session session(opts);

    std::shared_ptr<comm::CommFabric> fabric;
    if (spec.use_collective) {
        fabric = std::make_shared<comm::CommFabric>(1);
        session.add_process_group(
            0, std::make_shared<comm::ProcessGroup>(fabric, fabric->world_group(), 0));
    }

    Model model = build_model(session, spec);

    run_iteration(session, spec, model); // warmup, untraced
    session.sync_device();

    et::ExecutionTraceObserver obs;
    prof::ProfilerSession profiler;
    session.attach_et_observer(&obs);
    session.attach_profiler(&profiler);

    et::TraceMeta meta;
    meta.workload = "fuzz";
    meta.platform = "A100";
    meta.rank = 0;
    meta.world_size = 1;
    meta.iteration = 1;
    meta.seed = seed;
    meta.process_groups = session.process_group_defs();
    obs.set_meta(meta);
    obs.start();
    profiler.start();
    run_iteration(session, spec, model);
    session.sync_device();
    obs.stop();
    profiler.stop();

    FuzzedCase c;
    c.seed = seed;
    c.trace = obs.take_trace();
    c.prof = profiler.take_trace();
    if (spec.n_streams > 1)
        c.prof = spread_compute_streams(c.prof, spec.n_streams, spec.stream_salt);
    c.use_prof = spec.use_prof;

    c.cfg.platform = "A100";
    c.cfg.mode = spec.mode;
    c.cfg.iterations = 2;
    c.cfg.warmup_iterations = 1;
    c.cfg.seed = spec.replay_seed;
    // Pinned (not default_opt_level()) so an ambient MYST_OPT_LEVEL cannot
    // make the same seed mean two different cases; the differential oracle
    // overrides this field explicitly for its opt-level check.
    c.cfg.opt_level = 1;
    // Pinned for the same reason: the executor mode is part of the case's
    // identity, not ambient MYST_ASYNC state.  The oracle's stream-identity
    // check overrides this field explicitly for its serial-vs-async pair.
    c.cfg.async_level = spec.async_level;
    if (spec.filter_subtrace)
        c.cfg.filter.subtrace_root = "## fuzz ##";
    if (spec.only_category >= 0)
        c.cfg.filter.only_category = static_cast<dev::OpCategory>(spec.only_category);
    c.cfg.emulate_world_size = spec.emulate_world_size;

    c.summary = "seed=" + std::to_string(seed) +
                (spec.mode == fw::ExecMode::kNumeric ? " numeric" : " shape-only") +
                " B=" + std::to_string(spec.batch) + " H=" + std::to_string(spec.hidden) +
                " instrs=" + std::to_string(spec.instrs.size()) +
                " nodes=" + std::to_string(c.trace.size()) +
                (spec.use_backward ? " backward" : "") +
                (spec.use_collective ? " comm" : "") +
                (spec.use_embedding ? " emb" : "") + (c.use_prof ? " prof" : "") +
                (spec.filter_subtrace ? " subtrace" : "") +
                (spec.only_category >= 0 ? " cat-filter" : "") +
                (spec.n_streams > 1 ? " streams=" + std::to_string(spec.n_streams) : "") +
                (spec.async_level > 0 ? " async" : " serial");
    return c;
}

} // namespace mystique::testing
