#pragma once

/// @file
/// The mystique-fuzz CLI as a library function.
///
/// tools/mystique_fuzz.cpp is a two-line main over run_fuzz_cli() so the
/// CLI's behavior — flag parsing, check orchestration, report formatting,
/// exit codes — is unit-testable in-process (tests/testing/fuzz_cli_test.cpp)
/// instead of only observable by spawning the binary.  Streams are injected:
/// the real main passes stdout/stderr, tests pass tmpfile()s and assert on
/// what was printed.
///
/// Flags (see the usage string for the authoritative list):
///
///   --seed N         corpus base seed (default 7)
///   --iters N        corpus size (default MYST_FUZZ_ITERS, else 25)
///   --case S         re-run exactly one case seed (repro mode)
///   --churn          fault churn over every registered site
///   --churn-site S   fault churn over one named site
///   --churn-dir DIR  churn scratch directory (default: a fresh tmp dir)
///
/// Exit codes: 0 = all checks passed, 1 = mismatches or churn violations,
/// 2 = usage error (bad flag or value).

#include <cstdio>

namespace mystique::testing {

/// Runs the whole CLI.  @p argv follows main() conventions (argv[0] is the
/// program name, echoed into reproduce hints); human-facing report lines go
/// to @p out, usage errors to @p err.  Returns the process exit code; never
/// calls exit() and never throws for bad user input.
int run_fuzz_cli(int argc, const char* const* argv, std::FILE* out, std::FILE* err);

} // namespace mystique::testing
