#pragma once

/// @file
/// Device-side work descriptors.
///
/// A KernelDesc is the hardware-agnostic summary of one GPU kernel (or one
/// CPU compute region): how much arithmetic it does, how much memory it
/// moves, and how its accesses behave.  The cost and metric models consume
/// only this descriptor plus a PlatformSpec — mirroring the paper's premise
/// that operator metadata (shapes/dtypes), not tensor *values*, determines
/// performance, with the embedding-lookup locality knob as the documented
/// exception (§4.4).

#include <cstdint>
#include <string>

namespace mystique::dev {

/// Operator category, following the paper's taxonomy (§3.3, Figure 2).
enum class OpCategory {
    kATen,   ///< default compute backend ops
    kComm,   ///< c10d collective / P2P ops
    kFused,  ///< JIT-fused pointwise ops
    kCustom, ///< user-registered out-of-source ops
    kOther,  ///< wrappers / annotations (never replayed as work)
};

/// Returns the display name used in traces and reports.
const char* to_string(OpCategory c);

/// Broad kernel families with distinct efficiency/locality behaviour.
enum class KernelKind {
    kGemm,
    kConv,
    kPointwise,
    kReduction,
    kNorm,
    kPool,
    kEmbedding,
    kSoftmax,
    kLoss,
    kMemcpy,
    kComm,
    kFusedPointwise,
    kLstm,
    kOptimizer,
    kOther,
};

/// Returns the display name of a kernel kind.
const char* to_string(KernelKind k);

/// Hardware-agnostic description of one kernel's work.
struct KernelDesc {
    /// Synthetic kernel name (stable across original and replay runs so the
    /// micro-level comparison of Figure 6 can match kernels by name).
    std::string name;
    KernelKind kind = KernelKind::kOther;
    OpCategory category = OpCategory::kATen;

    /// Floating-point operations performed.
    double flops = 0.0;
    /// Total DRAM traffic in bytes (reads + writes, post-cache estimate).
    double bytes = 0.0;
    /// Footprint actively reused, for the cache-hit model.
    double working_set_bytes = 0.0;
    /// Access locality in [0,1]; 1 = perfectly cache-friendly.  For embedding
    /// lookups this is derived from the actual index distribution.
    double locality = 0.5;
    /// Number of independent work items (drives SM occupancy).
    double parallelism = 1 << 16;
};

/// Per-kernel microarchitectural metrics (Figure 6 quantities).
struct MicroMetrics {
    double ipc = 0.0;            ///< instructions per cycle (per SM, issued)
    double l1_hit_rate = 0.0;    ///< [0,1]
    double l2_hit_rate = 0.0;    ///< [0,1]
    double sm_throughput = 0.0;  ///< fraction of peak SM issue bandwidth [0,1]
};

} // namespace mystique::dev
