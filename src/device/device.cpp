#include "device/device.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mystique::dev {

Device::Device(PlatformSpec spec, std::optional<double> power_limit_w)
    : spec_(std::move(spec)), power_(spec_)
{
    set_power_limit(power_limit_w.value_or(spec_.tdp_w));
}

void
Device::set_power_limit(double watts)
{
    MYST_CHECK_MSG(watts > 0.0, "power limit must be positive");
    power_limit_w_ = watts;
    freq_scale_ = power_.freq_scale_for_limit(watts);
}

const KernelRecord&
Device::launch(const KernelDesc& desc, int stream_id, sim::TimeUs ready_us, Rng* jitter,
               std::optional<double> fixed_duration_us)
{
    double duration;
    if (fixed_duration_us.has_value()) {
        // Externally decided (collective rendezvous / injected delay):
        // no model evaluation and no per-rank jitter, so symmetric
        // collectives stay consistent across ranks.
        duration = *fixed_duration_us;
    } else {
        const KernelTime t = kernel_time(desc, spec_);
        duration = t.total_us(freq_scale_);
        if (jitter != nullptr) {
            // ~±1.5% multiplicative noise, clamped to stay positive and sane.
            const double noise = std::clamp(1.0 + 0.015 * jitter->normal(), 0.90, 1.10);
            duration *= noise;
        }
    }
    MYST_CHECK_MSG(duration >= 0.0, "negative kernel duration for '" << desc.name << "'");

    sim::TimeUs& tail = stream_tails_[stream_id];
    const sim::TimeUs start = std::max(ready_us, tail);
    const sim::TimeUs end = start + duration;
    tail = end;

    KernelRecord rec;
    rec.desc = desc;
    rec.stream_id = stream_id;
    rec.interval = {start, end};
    rec.correlation = next_correlation_++;
    rec.micro = micro_metrics(desc, spec_);
    rec.dynamic_energy = power_.kernel_dynamic_energy(desc, duration, freq_scale_);
    records_.push_back(std::move(rec));
    return records_.back();
}

sim::TimeUs
Device::stream_tail(int stream_id) const
{
    auto it = stream_tails_.find(stream_id);
    return it == stream_tails_.end() ? 0.0 : it->second;
}

sim::TimeUs
Device::sync_all() const
{
    sim::TimeUs t = 0.0;
    for (const auto& [id, tail] : stream_tails_)
        t = std::max(t, tail);
    return t;
}

std::vector<int>
Device::active_streams() const
{
    std::vector<int> ids;
    ids.reserve(stream_tails_.size());
    for (const auto& [id, tail] : stream_tails_)
        ids.push_back(id);
    return ids;
}

DeviceMetrics
Device::metrics(sim::TimeUs window_start, sim::TimeUs window_end) const
{
    DeviceMetrics m;
    m.window_us = std::max(0.0, window_end - window_start);
    if (m.window_us <= 0.0)
        return m;

    double weighted_sm = 0.0;
    double total_bytes = 0.0;
    double total_energy = 0.0;
    std::vector<sim::Interval> busy;
    busy.reserve(records_.size());

    for (const auto& rec : records_) {
        const sim::Interval win{window_start, window_end};
        if (!rec.interval.overlaps(win))
            continue;
        const double overlap = std::min(rec.interval.end, window_end) -
                               std::max(rec.interval.start, window_start);
        const double frac =
            rec.interval.duration() > 0.0 ? overlap / rec.interval.duration() : 0.0;
        weighted_sm += overlap * rec.micro.sm_throughput;
        total_bytes += rec.desc.bytes * frac;
        total_energy += rec.dynamic_energy * frac;
        m.kernel_time_us += overlap;
        busy.push_back({std::max(rec.interval.start, window_start),
                        std::min(rec.interval.end, window_end)});
    }

    // Concurrent kernels on different streams contend for the same SMs, so
    // aggregate activity saturates at 100%.
    m.sm_util_pct = std::min(100.0, 100.0 * weighted_sm / m.window_us);
    m.hbm_gbps = total_bytes / (m.window_us * 1e3); // bytes/us → GB/s
    m.power_w = power_.average_power(total_energy, m.window_us);
    m.busy_pct = std::min(100.0, 100.0 * sim::union_length(std::move(busy)) / m.window_us);
    return m;
}

void
Device::reset()
{
    stream_tails_.clear();
    records_.clear();
    next_correlation_ = 1;
}

} // namespace mystique::dev
