#pragma once

/// @file
/// Analytic kernel cost and microarchitectural metric models.
///
/// Durations follow a roofline with per-kind efficiency derating:
///
///   compute_us = flops / (peak_gflops * eff_compute(kind) * freq_scale)
///   memory_us  = bytes / (mem_bw_gbps * eff_memory(kind, locality))
///   duration   = max(compute_us, memory_us) + kernel_launch_us
///
/// The model is *deterministic* in (KernelDesc, PlatformSpec, freq_scale);
/// run-to-run jitter is applied separately by the Device so that original
/// and replay runs are independently noisy, as on real hardware.

#include "device/kernel.h"
#include "device/platform.h"

namespace mystique::dev {

/// Split duration so DVFS can scale the compute portion only.
struct KernelTime {
    double compute_us = 0.0; ///< at freq_scale = 1
    double memory_us = 0.0;
    double launch_us = 0.0;

    /// Total at the given frequency scale (compute scales 1/s).
    double total_us(double freq_scale) const
    {
        const double c = compute_us / freq_scale;
        return (c > memory_us ? c : memory_us) + launch_us;
    }
};

/// Compute efficiency (fraction of peak FLOP rate) for a kernel kind.
double compute_efficiency(KernelKind kind);

/// Memory efficiency (fraction of peak bandwidth) given kind and locality.
double memory_efficiency(KernelKind kind, double locality);

/// Evaluates the roofline for one kernel on one platform.
KernelTime kernel_time(const KernelDesc& desc, const PlatformSpec& spec);

/// Per-kernel microarchitectural metrics (Figure 6 quantities).  Purely a
/// function of the descriptor and platform, so identical kernels in original
/// and replay runs produce identical metrics — deviations come from
/// value-dependent descriptors (embedding locality) and run jitter.
MicroMetrics micro_metrics(const KernelDesc& desc, const PlatformSpec& spec);

/// Fraction of SM issue slots a kernel occupies while resident (occupancy ×
/// issue efficiency); used for SM-utilization accounting.
double sm_activity(const KernelDesc& desc, const PlatformSpec& spec);

/// Fraction of peak DRAM bandwidth the kernel sustains while running.
double mem_activity(const KernelDesc& desc, const PlatformSpec& spec);

} // namespace mystique::dev
