#pragma once

/// @file
/// Platform descriptions for the analytic device model.
///
/// These stand in for the paper's evaluation hardware: NVIDIA A100, NVIDIA
/// V100, an Intel Xeon Platinum CPU, and the anonymous "new, experimental
/// platform" of Figure 10.  Parameters are set from public datasheets with
/// derating factors so relative behaviour (A100 vs V100 vs CPU) is realistic;
/// absolute times are a property of this model, not of the paper's testbed.

#include <string>
#include <vector>

namespace mystique::dev {

/// Static description of an execution platform.
struct PlatformSpec {
    std::string name;
    /// False for CPU-style platforms: ops execute synchronously on the host
    /// thread and there is no stream-level concurrency.
    bool is_gpu = true;

    double peak_gflops = 0.0;      ///< achievable fp32 GFLOP/s at full clocks
    double mem_bw_gbps = 0.0;      ///< achievable DRAM/HBM bandwidth, GB/s
    double kernel_launch_us = 0.0; ///< device-side fixed cost per kernel
    double dispatch_us = 0.0;      ///< host-side framework cost per op issue

    int num_sms = 1;               ///< SMs (GPU) or cores (CPU)
    double l1_kb_per_sm = 0.0;     ///< L1/shared-memory capacity per SM
    double l2_mb = 0.0;            ///< shared L2 capacity
    double ipc_peak = 4.0;         ///< peak sustained IPC per SM

    double idle_power_w = 0.0;     ///< power at zero utilization
    double max_dynamic_power_w = 0.0; ///< additional power at full utilization
    double tdp_w = 0.0;            ///< board power limit ceiling
    double min_power_limit_w = 0.0;///< lowest settable power limit
    double min_freq_scale = 0.25;  ///< DVFS floor (fraction of max clocks)
    double alpha_power = 2.2;      ///< dynamic power ∝ freq_scale^alpha
};

/// Returns the built-in platform with the given name
/// ("A100", "V100", "CPU", "NewPlatform"); throws ConfigError otherwise.
PlatformSpec platform(const std::string& name);

/// Names of all built-in platforms.
std::vector<std::string> builtin_platforms();

/// NVIDIA A100-SXM-80GB-like accelerator (the paper's primary platform).
PlatformSpec a100();
/// NVIDIA V100-SXM2-like accelerator.
PlatformSpec v100();
/// Intel Xeon Platinum-like CPU host (eager-mode effective throughput).
PlatformSpec cpu();
/// Hypothetical next-generation accelerator used for early-stage platform
/// evaluation (Figure 10's "New plat.").
PlatformSpec new_platform();

} // namespace mystique::dev
