#include "device/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mystique::dev {

namespace {

double
clamp01(double x)
{
    return std::clamp(x, 0.0, 1.0);
}

} // namespace

double
compute_efficiency(KernelKind kind)
{
    // Fractions of datasheet FLOP rate that tuned kernels typically achieve.
    switch (kind) {
      case KernelKind::kGemm: return 0.78;
      case KernelKind::kConv: return 0.62;
      case KernelKind::kLstm: return 0.45;
      case KernelKind::kFusedPointwise: return 0.55;
      case KernelKind::kPointwise: return 0.40;
      case KernelKind::kNorm: return 0.35;
      case KernelKind::kSoftmax: return 0.35;
      case KernelKind::kReduction: return 0.38;
      case KernelKind::kPool: return 0.35;
      case KernelKind::kLoss: return 0.30;
      case KernelKind::kEmbedding: return 0.25;
      case KernelKind::kOptimizer: return 0.40;
      case KernelKind::kMemcpy: return 0.50;
      case KernelKind::kComm: return 0.50;
      case KernelKind::kOther: return 0.35;
    }
    return 0.35;
}

double
memory_efficiency(KernelKind kind, double locality)
{
    // Streaming kernels run near peak bandwidth; scattered access patterns
    // (embedding gathers) are penalized unless locality is high.
    double base;
    switch (kind) {
      case KernelKind::kPointwise:
      case KernelKind::kFusedPointwise:
      case KernelKind::kMemcpy:
        base = 0.88;
        break;
      case KernelKind::kGemm:
      case KernelKind::kConv:
        base = 0.80;
        break;
      case KernelKind::kNorm:
      case KernelKind::kReduction:
      case KernelKind::kSoftmax:
      case KernelKind::kPool:
      case KernelKind::kLoss:
      case KernelKind::kOptimizer:
        base = 0.75;
        break;
      case KernelKind::kEmbedding:
        // Gather-dominated: effective bandwidth rises with index locality
        // (cache-resident rows served without DRAM traffic).
        base = 0.30 + 0.55 * clamp01(locality);
        break;
      case KernelKind::kLstm:
        base = 0.70;
        break;
      case KernelKind::kComm:
        base = 0.85;
        break;
      case KernelKind::kOther:
        base = 0.70;
        break;
    }
    return clamp01(base);
}

KernelTime
kernel_time(const KernelDesc& desc, const PlatformSpec& spec)
{
    MYST_CHECK_MSG(desc.flops >= 0.0 && desc.bytes >= 0.0,
                   "negative work in kernel '" << desc.name << "'");
    KernelTime t;
    const double eff_c = compute_efficiency(desc.kind);
    const double eff_m = memory_efficiency(desc.kind, desc.locality);
    // GFLOP/s = flops/us * 1e-3  →  us = flops / (GFLOPs * 1e3)
    t.compute_us = desc.flops / (spec.peak_gflops * eff_c * 1e3);
    // GB/s = bytes/us * 1e-3    →  us = bytes / (GB/s * 1e3)
    t.memory_us = desc.bytes / (spec.mem_bw_gbps * eff_m * 1e3);
    t.launch_us = spec.kernel_launch_us;

    // Small kernels cannot fill the machine: penalize when parallelism is
    // below one wave of work per SM.
    const double wave = static_cast<double>(spec.num_sms) * 256.0;
    if (desc.parallelism < wave && desc.parallelism > 0.0) {
        const double under = wave / desc.parallelism;
        const double factor = std::min(8.0, std::pow(under, 0.5));
        t.compute_us *= factor;
        t.memory_us *= std::min(4.0, factor);
    }
    return t;
}

MicroMetrics
micro_metrics(const KernelDesc& desc, const PlatformSpec& spec)
{
    MicroMetrics m;
    const KernelTime t = kernel_time(desc, spec);
    const double busy = std::max(1e-9, t.compute_us + t.memory_us);
    // Compute-boundedness in [0,1]: GEMMs near 1, gathers near 0.
    const double r = t.compute_us / busy;

    // L1: working set per SM vs capacity, blended with access locality.
    const double l1_bytes = spec.l1_kb_per_sm * 1024.0 * spec.num_sms;
    const double ws = std::max(1.0, desc.working_set_bytes);
    const double l1_fit = l1_bytes / (l1_bytes + ws);
    m.l1_hit_rate = clamp01(0.50 * desc.locality + 0.42 * l1_fit + 0.08);

    // L2: shared capacity; misses past L1 hit L2 according to footprint fit.
    const double l2_bytes = spec.l2_mb * 1024.0 * 1024.0;
    const double l2_fit = l2_bytes / (l2_bytes + ws);
    m.l2_hit_rate = clamp01(0.35 * desc.locality + 0.55 * l2_fit + 0.10);

    // Occupancy: one wave is ~256 items per SM; saturates quickly.
    const double wave = static_cast<double>(spec.num_sms) * 256.0;
    const double occupancy = clamp01(desc.parallelism / (2.0 * wave));

    // Issue throughput combines residency with compute-boundedness.
    m.sm_throughput = clamp01(occupancy * (0.35 + 0.65 * r));
    m.ipc = spec.ipc_peak * m.sm_throughput;
    return m;
}

double
sm_activity(const KernelDesc& desc, const PlatformSpec& spec)
{
    return micro_metrics(desc, spec).sm_throughput;
}

double
mem_activity(const KernelDesc& desc, const PlatformSpec& spec)
{
    const KernelTime t = kernel_time(desc, spec);
    const double dur = std::max(1e-9, t.total_us(1.0));
    // bytes/us sustained over the kernel, as a fraction of peak bytes/us.
    const double sustained = desc.bytes / dur;
    const double peak = spec.mem_bw_gbps * 1e3;
    return std::clamp(sustained / peak, 0.0, 1.0);
}

} // namespace mystique::dev
