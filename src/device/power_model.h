#pragma once

/// @file
/// Board power and DVFS model.
///
/// Power = idle + dynamic, with dynamic power proportional to utilization and
/// to freq_scale^alpha (alpha ≈ 2.2 captures the voltage–frequency curve).
/// Setting a power limit below TDP caps the sustainable frequency scale; the
/// compute portion of kernel time then dilates by 1/freq_scale while the
/// memory portion is unaffected.  This produces the workload-dependent
/// energy-efficiency knees swept in the paper's Figure 8.

#include "device/kernel.h"
#include "device/platform.h"

namespace mystique::dev {

/// Power/DVFS behaviour for one platform instance.
class PowerModel {
  public:
    explicit PowerModel(PlatformSpec spec);

    /// Frequency scale sustainable under @p power_limit_w (clamped to
    /// [spec.min_freq_scale, 1]).  Limits at/above idle+dynamic yield 1.
    double freq_scale_for_limit(double power_limit_w) const;

    /// Dynamic energy (W·us) a kernel dissipates while running for
    /// @p duration_us at @p freq_scale given its compute/memory activity.
    double kernel_dynamic_energy(const KernelDesc& desc, double duration_us,
                                 double freq_scale) const;

    /// Average board power over a window: idle + Σ dynamic energy / window.
    double average_power(double total_dynamic_energy, double window_us) const;

    const PlatformSpec& spec() const { return spec_; }

  private:
    PlatformSpec spec_;
};

} // namespace mystique::dev
