#include "device/power_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "device/cost_model.h"

namespace mystique::dev {

PowerModel::PowerModel(PlatformSpec spec) : spec_(std::move(spec)) {}

double
PowerModel::freq_scale_for_limit(double power_limit_w) const
{
    MYST_CHECK_MSG(power_limit_w > 0.0, "non-positive power limit");
    const double budget = power_limit_w - spec_.idle_power_w;
    if (budget <= 0.0)
        return spec_.min_freq_scale;
    if (budget >= spec_.max_dynamic_power_w)
        return 1.0;
    const double s = std::pow(budget / spec_.max_dynamic_power_w, 1.0 / spec_.alpha_power);
    return std::clamp(s, spec_.min_freq_scale, 1.0);
}

double
PowerModel::kernel_dynamic_energy(const KernelDesc& desc, double duration_us,
                                  double freq_scale) const
{
    const double cu = sm_activity(desc, spec_);
    const double mu = mem_activity(desc, spec_);
    // Compute activity pays the full frequency/voltage cost; memory-system
    // power scales much less with core clocks.
    const double p_dyn = spec_.max_dynamic_power_w *
                         (0.62 * cu * std::pow(freq_scale, spec_.alpha_power) +
                          0.38 * mu * std::pow(freq_scale, 0.4));
    return p_dyn * duration_us;
}

double
PowerModel::average_power(double total_dynamic_energy, double window_us) const
{
    if (window_us <= 0.0)
        return spec_.idle_power_w;
    return spec_.idle_power_w + total_dynamic_energy / window_us;
}

} // namespace mystique::dev
