#pragma once

/// @file
/// Virtual device runtime: FIFO streams, kernel placement, metric windows.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "device/cost_model.h"
#include "device/kernel.h"
#include "device/platform.h"
#include "device/power_model.h"
#include "sim/timeline.h"

namespace mystique::dev {

/// Conventional stream IDs, mirroring the paper's profiler screenshots
/// (compute on stream 7, collectives on 20, memcpy on 22).
inline constexpr int kComputeStream = 7;
inline constexpr int kCommStream = 20;
inline constexpr int kMemcpyStream = 22;

/// One executed kernel with its placement and derived metrics.
struct KernelRecord {
    KernelDesc desc;
    int stream_id = kComputeStream;
    sim::Interval interval;
    /// Links the kernel to the launching CPU op in the profiler trace.
    uint64_t correlation = 0;
    MicroMetrics micro;
    double dynamic_energy = 0.0; ///< W·us dissipated by this kernel
};

/// Aggregated device metrics over a time window (Figure 5 / Table 5 rows).
struct DeviceMetrics {
    double window_us = 0.0;
    double sm_util_pct = 0.0;   ///< mean SM activity, percent
    double hbm_gbps = 0.0;      ///< mean DRAM traffic, GB/s
    double power_w = 0.0;       ///< mean board power, W
    double busy_pct = 0.0;      ///< fraction of window with ≥1 kernel resident
    double kernel_time_us = 0.0;///< Σ kernel durations (overlap counted twice)
};

/// A virtual accelerator (or CPU socket) owning FIFO streams.
///
/// Thread-compatible, not thread-safe: in distributed runs each rank owns a
/// private Device.
class Device {
  public:
    /// Creates a device; @p power_limit_w defaults to the platform TDP.
    explicit Device(PlatformSpec spec, std::optional<double> power_limit_w = std::nullopt);

    const PlatformSpec& spec() const { return spec_; }
    const PowerModel& power_model() const { return power_; }

    /// Current DVFS frequency scale implied by the power limit.
    double freq_scale() const { return freq_scale_; }
    double power_limit_w() const { return power_limit_w_; }

    /// Changes the power limit (Figure 8 sweeps); affects future launches.
    void set_power_limit(double watts);

    /// Places a kernel on a stream.
    ///
    /// @param desc       work descriptor
    /// @param stream_id  target stream (created on demand)
    /// @param ready_us   earliest legal start (host launch time and input
    ///                   dependency readiness, already max-combined by caller)
    /// @param jitter     optional RNG for multiplicative duration noise
    /// @param fixed_duration_us  when set, overrides the modeled duration
    ///                   (used by collectives whose cost a rendezvous decides,
    ///                   and by the scale-down emulator's injected delays)
    /// @return the record, including the placed interval
    const KernelRecord& launch(const KernelDesc& desc, int stream_id, sim::TimeUs ready_us,
                               Rng* jitter = nullptr,
                               std::optional<double> fixed_duration_us = std::nullopt);

    /// Time at which a given stream drains (its tail), or 0 if untouched.
    sim::TimeUs stream_tail(int stream_id) const;

    /// Time at which every stream has drained.
    sim::TimeUs sync_all() const;

    /// All kernels launched so far, in launch order.
    const std::vector<KernelRecord>& records() const { return records_; }

    /// IDs of streams that have been used.
    std::vector<int> active_streams() const;

    /// Aggregates metrics over [window_start, window_end); kernels partially
    /// inside the window contribute pro-rata.
    DeviceMetrics metrics(sim::TimeUs window_start, sim::TimeUs window_end) const;

    /// Forgets all records and stream state (between measurement phases).
    void reset();

  private:
    PlatformSpec spec_;
    PowerModel power_;
    double power_limit_w_ = 0.0;
    double freq_scale_ = 1.0;
    std::map<int, sim::TimeUs> stream_tails_;
    std::vector<KernelRecord> records_;
    uint64_t next_correlation_ = 1;
};

} // namespace mystique::dev
