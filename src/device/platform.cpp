#include "device/platform.h"

#include "common/error.h"
#include "device/kernel.h"

namespace mystique::dev {

const char*
to_string(OpCategory c)
{
    switch (c) {
      case OpCategory::kATen: return "ATen";
      case OpCategory::kComm: return "Comms";
      case OpCategory::kFused: return "Fused";
      case OpCategory::kCustom: return "Custom";
      case OpCategory::kOther: return "Other";
    }
    return "?";
}

const char*
to_string(KernelKind k)
{
    switch (k) {
      case KernelKind::kGemm: return "gemm";
      case KernelKind::kConv: return "conv";
      case KernelKind::kPointwise: return "pointwise";
      case KernelKind::kReduction: return "reduction";
      case KernelKind::kNorm: return "norm";
      case KernelKind::kPool: return "pool";
      case KernelKind::kEmbedding: return "embedding";
      case KernelKind::kSoftmax: return "softmax";
      case KernelKind::kLoss: return "loss";
      case KernelKind::kMemcpy: return "memcpy";
      case KernelKind::kComm: return "comm";
      case KernelKind::kFusedPointwise: return "fused_pointwise";
      case KernelKind::kLstm: return "lstm";
      case KernelKind::kOptimizer: return "optimizer";
      case KernelKind::kOther: return "other";
    }
    return "?";
}

PlatformSpec
a100()
{
    PlatformSpec p;
    p.name = "A100";
    p.is_gpu = true;
    p.peak_gflops = 19500.0;
    p.mem_bw_gbps = 1555.0;
    p.kernel_launch_us = 2.0;
    p.dispatch_us = 4.0;
    p.num_sms = 108;
    p.l1_kb_per_sm = 192.0;
    p.l2_mb = 40.0;
    p.ipc_peak = 4.0;
    p.idle_power_w = 55.0;
    p.max_dynamic_power_w = 345.0;
    p.tdp_w = 400.0;
    p.min_power_limit_w = 100.0;
    p.min_freq_scale = 0.30;
    p.alpha_power = 2.2;
    return p;
}

PlatformSpec
v100()
{
    PlatformSpec p;
    p.name = "V100";
    p.is_gpu = true;
    p.peak_gflops = 15700.0;
    p.mem_bw_gbps = 900.0;
    p.kernel_launch_us = 2.6;
    p.dispatch_us = 4.2;
    p.num_sms = 80;
    p.l1_kb_per_sm = 128.0;
    p.l2_mb = 6.0;
    p.ipc_peak = 3.6;
    p.idle_power_w = 45.0;
    p.max_dynamic_power_w = 255.0;
    p.tdp_w = 300.0;
    p.min_power_limit_w = 100.0;
    p.min_freq_scale = 0.30;
    p.alpha_power = 2.2;
    return p;
}

PlatformSpec
cpu()
{
    PlatformSpec p;
    p.name = "CPU";
    p.is_gpu = false;
    // Effective eager-mode throughput of a dual-socket Xeon Platinum, not the
    // AVX-512 theoretical peak: framework overhead dominates small ops and
    // GEMM libraries reach ~50% peak on large ones.
    p.peak_gflops = 450.0;
    p.mem_bw_gbps = 95.0;
    p.kernel_launch_us = 0.0;
    p.dispatch_us = 3.6;
    p.num_sms = 28;
    p.l1_kb_per_sm = 32.0;
    p.l2_mb = 38.5; // aggregate L2+L3 proxy
    p.ipc_peak = 4.0;
    p.idle_power_w = 90.0;
    p.max_dynamic_power_w = 180.0;
    p.tdp_w = 270.0;
    p.min_power_limit_w = 120.0;
    p.min_freq_scale = 0.40;
    p.alpha_power = 2.0;
    return p;
}

PlatformSpec
new_platform()
{
    PlatformSpec p;
    p.name = "NewPlatform";
    p.is_gpu = true;
    // An aggressive next-generation part: ~2x A100 compute, ~1.9x bandwidth,
    // leaner launch path.  Used only through replay in Figure 10 — by
    // construction the "full software stack" (our custom ops) is absent.
    p.peak_gflops = 40000.0;
    p.mem_bw_gbps = 2900.0;
    p.kernel_launch_us = 1.4;
    p.dispatch_us = 3.2;
    p.num_sms = 144;
    p.l1_kb_per_sm = 256.0;
    p.l2_mb = 64.0;
    p.ipc_peak = 4.4;
    p.idle_power_w = 60.0;
    p.max_dynamic_power_w = 440.0;
    p.tdp_w = 500.0;
    p.min_power_limit_w = 120.0;
    p.min_freq_scale = 0.30;
    p.alpha_power = 2.2;
    return p;
}

PlatformSpec
platform(const std::string& name)
{
    if (name == "A100")
        return a100();
    if (name == "V100")
        return v100();
    if (name == "CPU")
        return cpu();
    if (name == "NewPlatform")
        return new_platform();
    MYST_THROW(ConfigError, "unknown platform '" << name
                            << "' (expected A100, V100, CPU or NewPlatform)");
}

std::vector<std::string>
builtin_platforms()
{
    return {"A100", "V100", "CPU", "NewPlatform"};
}

} // namespace mystique::dev
