#pragma once

/// @file
/// Measurement harness: runs original workloads (single-rank or distributed)
/// and collects the paper's artifacts — the execution trace of one iteration,
/// the profiler trace of that iteration, per-iteration times, and device
/// metrics over the timed window.

#include <optional>
#include <string>
#include <vector>

#include "comm/network_model.h"
#include "device/device.h"
#include "et/trace.h"
#include "profiler/profiler.h"
#include "workloads/workload.h"

namespace mystique::wl {

/// Harness configuration.
struct RunConfig {
    std::string platform = "A100";
    fw::ExecMode mode = fw::ExecMode::kShapeOnly;
    int world_size = 1;
    int warmup_iterations = 2;
    int iterations = 5;
    uint64_t seed = 42;
    std::optional<double> power_limit_w;
    comm::Topology topology;
    /// Collect ET + profiler traces (of the first timed iteration).
    bool collect_traces = true;
};

/// Per-rank artifacts.
struct RankResult {
    et::ExecutionTrace trace;
    prof::ProfilerTrace prof;
    std::vector<double> iter_us;
    double mean_iter_us = 0.0;
    dev::DeviceMetrics metrics;
};

/// Whole-run artifacts.
struct RunResult {
    std::vector<RankResult> ranks;
    /// Mean iteration time averaged over ranks.
    double mean_iter_us = 0.0;

    const RankResult& rank0() const { return ranks.at(0); }
};

/// Runs a workload and collects artifacts.  For world_size > 1, ranks run on
/// threads sharing a collective fabric; every rank records its own ET from
/// the same iteration (§4.1's requirement for matching communication ops).
RunResult run_original(const std::string& workload_name, const WorkloadOptions& wopts,
                       const RunConfig& cfg);

} // namespace mystique::wl
