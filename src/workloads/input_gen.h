#pragma once

/// @file
/// Input generation helpers shared by the workloads.
///
/// Inputs model a data-loader: host-side tensors created outside the traced
/// op stream (as real dataloaders do), then moved to the device through
/// aten::to.device on the memcpy stream.  Index tensors are materialized in
/// every execution mode because their values feed the embedding locality
/// model (§4.4).

#include "framework/functional.h"
#include "framework/math.h"
#include "framework/session.h"

namespace mystique::wl {

/// Host float tensor (materialized only in numeric mode).
inline fw::Tensor
host_float(fw::Session& s, fw::Shape shape)
{
    fw::Tensor t = fw::Tensor::create(std::move(shape), fw::DType::kFloat32, s.numeric());
    t.impl()->device = "cpu";
    if (s.numeric())
        fw::math::randn(t.f32(), t.numel(), s.rng(), 1.0f);
    return t;
}

/// Host float tensor with values in [0,1) (targets for BCE).
inline fw::Tensor
host_float_01(fw::Session& s, fw::Shape shape)
{
    fw::Tensor t = fw::Tensor::create(std::move(shape), fw::DType::kFloat32, s.numeric());
    t.impl()->device = "cpu";
    if (s.numeric()) {
        for (int64_t i = 0; i < t.numel(); ++i)
            t.f32()[i] = static_cast<float>(s.rng().uniform());
    }
    return t;
}

/// Host int64 class labels in [0, classes).
inline fw::Tensor
host_labels(fw::Session& s, int64_t n, int64_t classes)
{
    fw::Tensor t = fw::Tensor::create({n}, fw::DType::kInt64, true);
    t.impl()->device = "cpu";
    for (int64_t i = 0; i < n; ++i)
        t.i64()[i] = s.rng().uniform_int(0, classes - 1);
    return t;
}

/// Host int64 embedding indices drawn from a Zipf distribution (production
/// lookups are heavily skewed; this is what the replayer's default uniform
/// generation slightly mis-models until refined, §4.4).
inline fw::Tensor
host_indices(fw::Session& s, int64_t nnz, int64_t rows, double zipf_s = 1.05)
{
    fw::Tensor t = fw::Tensor::create({nnz}, fw::DType::kInt64, true);
    t.impl()->device = "cpu";
    for (int64_t i = 0; i < nnz; ++i)
        t.i64()[i] = s.rng().zipf(rows, zipf_s);
    return t;
}

/// Host int64 bag offsets: @p bags evenly-sized bags over @p nnz indices.
inline fw::Tensor
host_offsets(fw::Session& s, int64_t bags, int64_t nnz)
{
    (void)s;
    fw::Tensor t = fw::Tensor::create({bags}, fw::DType::kInt64, true);
    t.impl()->device = "cpu";
    for (int64_t i = 0; i < bags; ++i)
        t.i64()[i] = i * nnz / bags;
    return t;
}

} // namespace mystique::wl
