/// @file
/// RM (§6.2): "a leading edge multi-node, multi-GPU production recommendation
/// model ... the production implementation that the open-source DLRM
/// benchmark aims to approximate."
///
/// Structure (DLRM-style with production adaptations):
///  - dense features through a bottom MLP (with a torchrec jagged-feature
///    preprocessing custom op — unsupported by the replayer by default),
///  - embedding tables: half through aten::embedding_bag, half through one
///    FBGEMM batched lookup (a "common library" custom op the replayer
///    supports out of the box, §5),
///  - pairwise dot-product feature interaction (bmm),
///  - a gated top MLP using JIT-fused pointwise blocks (Fused category),
///  - BCE-with-logits loss.
/// Distributed runs shard tables across ranks (model parallel, all_to_all)
/// and wrap dense parameters in DDP (data parallel, bucketed all_reduce) —
/// the §6.6 configuration ("we adjust RM's parameters" at scale: the
/// per-rank table count shrinks as the world grows).

#include "workloads/workloads_impl.h"

namespace mystique::wl {

namespace {

struct Dims {
    int64_t batch;
    int64_t dense;
    int64_t emb_dim;
    int64_t tables;
    int64_t rows;
    int64_t pooling;
    int64_t bottom_hidden;
    int64_t top_hidden;
    double zipf_s;
    int64_t jagged_len;
};

Dims
dims_for(Preset preset)
{
    if (preset == Preset::kTiny)
        return {4, 8, 8, 4, 64, 4, 16, 16, 0.8, 2};
    return {4096, 256, 192, 24, 2000000, 64, 1024, 1024, 1.05, 4};
}

} // namespace

class Rm final : public Workload {
  public:
    explicit Rm(Preset preset) : dims_(dims_for(preset)) {}

    std::string name() const override { return "rm"; }

    void setup(fw::Session& s) override
    {
        world_ = s.options().world_size;
        // The paper "adjusts RM's parameters" for the large-scale runs
        // (§6.6): at high rank counts the per-rank table shard shrinks.
        if (world_ > 8 && dims_.rows > 500000)
            dims_.rows = 500000;
        // Model parallelism: this rank owns tables t with t % world == rank,
        // but never fewer than two per rank.
        local_tables_ = std::max<int64_t>(2, dims_.tables / world_);
        aten_tables_ = local_tables_ / 2;
        fbgemm_tables_ = local_tables_ - aten_tables_;

        for (int64_t t = 0; t < aten_tables_; ++t)
            emb_.emplace_back(s, dims_.rows, dims_.emb_dim);
        // FBGEMM: one stacked weight for the remaining tables.
        fbgemm_weights_ =
            fw::nn::make_parameter(s, {fbgemm_tables_ * dims_.rows, dims_.emb_dim}, 0.02f);

        const int64_t dense_in = dims_.dense + dims_.jagged_len;
        bottom_.emplace_back(s, dense_in, dims_.bottom_hidden);
        bottom_.emplace_back(s, dims_.bottom_hidden, dims_.bottom_hidden);
        bottom_.emplace_back(s, dims_.bottom_hidden, dims_.emb_dim);

        const int64_t f = local_tables_ + 1; // embeddings + dense vector
        // The custom interaction kernel emits [B, emb_dim + f*f].
        const int64_t interact_dim = dims_.emb_dim + f * f;
        // Gated top blocks: three parallel linears feeding a gating unit
        // (a production adaptation over open-source DLRM).  Only the last
        // block goes through the JIT fuser; the earlier ones execute the
        // gate as eager pointwise ops — sigmoid+mul+add+relu — so in the
        // production config the trace carries both the Fused (schemaless,
        // replay-skipped per §4.3.4) and the eager ATen form of the same
        // gating pattern.
        top_in_.emplace_back(s, interact_dim, dims_.top_hidden);
        top_gate_.emplace_back(s, interact_dim, dims_.top_hidden);
        top_skip_.emplace_back(s, interact_dim, dims_.top_hidden);
        top_in_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_gate_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_skip_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_in_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_gate_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_skip_.emplace_back(s, dims_.top_hidden, dims_.top_hidden);
        top_out_ = std::make_unique<fw::nn::Linear>(s, dims_.top_hidden, 1);

        std::vector<fw::Tensor> dense_params;
        auto absorb = [&dense_params](const std::vector<fw::Tensor>& ps) {
            dense_params.insert(dense_params.end(), ps.begin(), ps.end());
        };
        for (auto& l : bottom_)
            absorb(l.parameters());
        for (std::size_t i = 0; i < top_in_.size(); ++i) {
            absorb(top_in_[i].parameters());
            absorb(top_gate_[i].parameters());
            absorb(top_skip_[i].parameters());
        }
        absorb(top_out_->parameters());

        // Embedding tables use a fused row-sparse update inside the backward
        // kernels (FBGEMM-style), so only dense parameters go through the
        // eager SGD op stream — as in the production RM.
        opt_ = std::make_unique<fw::nn::SGD>(dense_params, 0.01);
        if (world_ > 1) {
            // Finer buckets than the 25 MB default: several overlapping
            // all-reduces per backward, as the production RM config uses.
            ddp_ = std::make_unique<fw::nn::DistributedDataParallel>(s, dense_params, 0,
                                                                     4 * 1024 * 1024);
        }
    }

    void iteration(fw::Session& s, int iter) override
    {
        (void)iter;
        if (ddp_)
            ddp_->reset();
        const int64_t b = dims_.batch;

        // ---- inputs (dataloader side)
        fw::Tensor dense_host = host_float(s, {b, dims_.dense});
        fw::Tensor jagged_vals = host_float(s, {b * dims_.jagged_len / 2});
        fw::Tensor jagged_off = host_offsets(s, b, jagged_vals.numel());
        fw::Tensor targets_host = host_float_01(s, {b, 1});
        std::vector<fw::Tensor> idx_dev, off_dev;
        for (int64_t t = 0; t < aten_tables_; ++t) {
            fw::Tensor idx = host_indices(s, b * dims_.pooling, dims_.rows, dims_.zipf_s);
            fw::Tensor off = host_offsets(s, b, idx.numel());
            idx_dev.push_back(fw::F::to_device(s, idx));
            off_dev.push_back(fw::F::to_device(s, off));
        }
        // FBGEMM stacked lookup: absolute row offsets per table.
        fw::Tensor fb_idx = fw::Tensor::create({fbgemm_tables_ * b * dims_.pooling},
                                               fw::DType::kInt64, true);
        fb_idx.impl()->device = "cpu";
        for (int64_t t = 0; t < fbgemm_tables_; ++t) {
            for (int64_t i = 0; i < b * dims_.pooling; ++i) {
                fb_idx.i64()[t * b * dims_.pooling + i] =
                    t * dims_.rows + s.rng().zipf(dims_.rows, dims_.zipf_s);
            }
        }
        fw::Tensor fb_off = host_offsets(s, fbgemm_tables_ * b, fb_idx.numel());
        fw::Tensor fb_idx_d = fw::F::to_device(s, fb_idx);
        fw::Tensor fb_off_d = fw::F::to_device(s, fb_off);
        fw::Tensor dense_d = fw::F::to_device(s, dense_host);
        fw::Tensor jv_d = fw::F::to_device(s, jagged_vals);
        fw::Tensor jo_d = fw::F::to_device(s, jagged_off);
        fw::Tensor y = fw::F::to_device(s, targets_host);

        // ---- dense path
        fw::Tensor bottom_out;
        {
            fw::RecordFunction rf(s, "## forward:dense ##");
            fw::Tensor jagged = s.call_t(MYST_OP("torchrec::jagged_to_padded_dense"),
                                         {fw::IValue(jv_d), fw::IValue(jo_d),
                                          fw::IValue(dims_.jagged_len)});
            fw::Tensor x = fw::F::cat(s, {dense_d, jagged}, 1);
            for (std::size_t i = 0; i < bottom_.size(); ++i) {
                x = bottom_[i].forward(s, x);
                x = fw::F::relu(s, x);
            }
            bottom_out = x; // [B, emb_dim]
        }

        // ---- sparse path
        std::vector<fw::Tensor> features{bottom_out};
        {
            fw::RecordFunction rf(s, "## forward:sparse ##");
            for (int64_t t = 0; t < aten_tables_; ++t)
                features.push_back(emb_[static_cast<std::size_t>(t)].forward(
                    s, idx_dev[static_cast<std::size_t>(t)],
                    off_dev[static_cast<std::size_t>(t)]));
            fw::Tensor fb = s.call_t(MYST_OP("fbgemm::batched_embedding_lookup"),
                                     {fw::IValue(fbgemm_weights_), fw::IValue(fb_idx_d),
                                      fw::IValue(fb_off_d), fw::IValue(fbgemm_tables_)});
            // [B, fbgemm_tables*dim] → per-table features
            for (int64_t t = 0; t < fbgemm_tables_; ++t)
                features.push_back(s.call_t(
                    MYST_OP("aten::narrow"), {fw::IValue(fb), fw::IValue(static_cast<int64_t>(1)),
                                     fw::IValue(t * dims_.emb_dim),
                                     fw::IValue(dims_.emb_dim)}));
            if (world_ > 1) {
                // Model-parallel exchange: the pooled embeddings are packed,
                // exchanged across ranks, and the interaction consumes the
                // *exchanged* features — so downstream compute genuinely
                // depends on the all_to_all (exposed comm when not hidden).
                std::vector<fw::Tensor> sparse_only(features.begin() + 1,
                                                    features.end());
                fw::Tensor packed = fw::F::cat(s, sparse_only, 1);
                fw::Tensor exchanged = fw::F::all_to_all(s, packed, 0);
                features.resize(1);
                for (int64_t t = 0; t < local_tables_; ++t)
                    features.push_back(s.call_t(
                        MYST_OP("aten::narrow"),
                        {fw::IValue(exchanged), fw::IValue(static_cast<int64_t>(1)),
                         fw::IValue(t * dims_.emb_dim), fw::IValue(dims_.emb_dim)}));
            }
        }

        // ---- interaction + top MLP
        fw::Tensor logits;
        {
            fw::RecordFunction rf(s, "## forward:z ##");
            // Production fused interaction kernel (custom op — not in the
            // replayer's default registry).
            std::vector<fw::Tensor> sparse(features.begin() + 1, features.end());
            fw::Tensor x = s.call_t(MYST_OP("meta::interaction_arch"),
                                    {fw::IValue(bottom_out), fw::IValue(sparse)});
            for (std::size_t i = 0; i < top_in_.size(); ++i) {
                fw::Tensor h = top_in_[i].forward(s, x);
                fw::Tensor g = top_gate_[i].forward(s, x);
                fw::Tensor skip = top_skip_[i].forward(s, x);
                if (i + 1 < top_in_.size()) {
                    // Eager sigmoid gate: the fuser bails on these blocks.
                    fw::Tensor gate = fw::F::sigmoid(s, g);
                    x = fw::F::mul(s, gate, h);
                    x = fw::F::add(s, x, skip);
                    x = fw::F::relu(s, x);
                } else {
                    x = fw::fused_mul_add_relu(s, h, g, skip);
                }
            }
            logits = top_out_->forward(s, x);
        }

        fw::Tensor loss = fw::F::bce_with_logits(s, logits, y);
        s.backward(loss);
        if (ddp_)
            ddp_->wait_all(s); // gradients must be averaged before the update
        opt_->step(s);
        opt_->zero_grad();
    }

  private:
    static void absorb_into(std::vector<fw::Tensor>& dst, const std::vector<fw::Tensor>& src)
    {
        dst.insert(dst.end(), src.begin(), src.end());
    }

    Dims dims_;
    int world_ = 1;
    int64_t local_tables_ = 0;
    int64_t aten_tables_ = 0;
    int64_t fbgemm_tables_ = 0;
    std::vector<fw::nn::EmbeddingBag> emb_;
    fw::Tensor fbgemm_weights_;
    std::vector<fw::nn::Linear> bottom_;
    std::vector<fw::nn::Linear> top_in_;
    std::vector<fw::nn::Linear> top_gate_;
    std::vector<fw::nn::Linear> top_skip_;
    std::unique_ptr<fw::nn::Linear> top_out_;
    std::unique_ptr<fw::nn::SGD> opt_;
    std::unique_ptr<fw::nn::DistributedDataParallel> ddp_;
};

std::unique_ptr<Workload>
make_rm(const WorkloadOptions& opts)
{
    return std::make_unique<Rm>(opts.preset);
}

} // namespace mystique::wl
