/// @file
/// ResNet-18 image-classification training (§6.2): torchvision's resnet18,
/// batch 128, float32, DDP for distributed runs.  Full basic-block topology:
/// stem conv7x7/2 + maxpool, four stages of two residual blocks, adaptive
/// average pooling, and a fully-connected classifier with NLL loss.

#include "workloads/workloads_impl.h"

namespace mystique::wl {

namespace {

struct Dims {
    int64_t batch;
    int64_t image;
    int64_t base_width;
    int64_t classes;
};

Dims
dims_for(Preset preset)
{
    if (preset == Preset::kTiny)
        return {2, 32, 8, 10};
    return {128, 224, 64, 1000};
}

} // namespace

/// One torchvision BasicBlock.
class BasicBlock {
  public:
    BasicBlock(fw::Session& s, int64_t in_ch, int64_t out_ch, int64_t stride)
        : conv1_(s, in_ch, out_ch, 3, stride, 1, /*bias=*/false),
          bn1_(s, out_ch),
          conv2_(s, out_ch, out_ch, 3, 1, 1, /*bias=*/false),
          bn2_(s, out_ch)
    {
        if (stride != 1 || in_ch != out_ch) {
            down_conv_ = std::make_unique<fw::nn::Conv2d>(s, in_ch, out_ch, 1, stride, 0,
                                                          /*bias=*/false);
            down_bn_ = std::make_unique<fw::nn::BatchNorm2d>(s, out_ch);
        }
    }

    fw::Tensor forward(fw::Session& s, const fw::Tensor& x) const
    {
        fw::Tensor out = conv1_.forward(s, x);
        out = bn1_.forward(s, out);
        out = fw::F::relu(s, out);
        out = conv2_.forward(s, out);
        out = bn2_.forward(s, out);
        fw::Tensor shortcut = x;
        if (down_conv_) {
            shortcut = down_conv_->forward(s, x);
            shortcut = down_bn_->forward(s, shortcut);
        }
        out = fw::F::add(s, out, shortcut);
        return fw::F::relu(s, out);
    }

    std::vector<fw::Tensor> parameters() const
    {
        std::vector<fw::Tensor> out;
        auto absorb = [&out](const std::vector<fw::Tensor>& ps) {
            out.insert(out.end(), ps.begin(), ps.end());
        };
        absorb(conv1_.parameters());
        absorb(conv2_.parameters());
        if (down_conv_)
            absorb(down_conv_->parameters());
        absorb(bn1_.parameters());
        absorb(bn2_.parameters());
        if (down_bn_)
            absorb(down_bn_->parameters());
        return out;
    }

  private:
    fw::nn::Conv2d conv1_;
    fw::nn::BatchNorm2d bn1_;
    fw::nn::Conv2d conv2_;
    fw::nn::BatchNorm2d bn2_;
    std::unique_ptr<fw::nn::Conv2d> down_conv_;
    std::unique_ptr<fw::nn::BatchNorm2d> down_bn_;
};

class ResNet final : public Workload {
  public:
    explicit ResNet(Preset preset) : dims_(dims_for(preset)) {}

    std::string name() const override { return "resnet"; }

    void setup(fw::Session& s) override
    {
        const int64_t w = dims_.base_width;
        stem_ = std::make_unique<fw::nn::Conv2d>(s, 3, w, 7, 2, 3, /*bias=*/false);
        stem_bn_ = std::make_unique<fw::nn::BatchNorm2d>(s, w);
        const int64_t widths[4] = {w, 2 * w, 4 * w, 8 * w};
        int64_t in_ch = w;
        for (int stage = 0; stage < 4; ++stage) {
            const int64_t out_ch = widths[stage];
            const int64_t stride = stage == 0 ? 1 : 2;
            blocks_.push_back(std::make_unique<BasicBlock>(s, in_ch, out_ch, stride));
            blocks_.push_back(std::make_unique<BasicBlock>(s, out_ch, out_ch, 1));
            in_ch = out_ch;
        }
        fc_ = std::make_unique<fw::nn::Linear>(s, 8 * w, dims_.classes);

        std::vector<fw::Tensor> params = stem_->parameters();
        for (auto& p : stem_bn_->parameters())
            params.push_back(p);
        for (auto& b : blocks_)
            for (auto& p : b->parameters())
                params.push_back(p);
        for (auto& p : fc_->parameters())
            params.push_back(p);
        opt_ = std::make_unique<fw::nn::SGD>(params, 0.1);
        if (s.options().world_size > 1)
            ddp_ = std::make_unique<fw::nn::DistributedDataParallel>(s, params, 0);
    }

    void iteration(fw::Session& s, int iter) override
    {
        (void)iter;
        if (ddp_)
            ddp_->reset();
        fw::Tensor images = host_float(s, {dims_.batch, 3, dims_.image, dims_.image});
        fw::Tensor labels = host_labels(s, dims_.batch, dims_.classes);
        fw::Tensor x = fw::F::to_device(s, images);
        fw::Tensor y = fw::F::to_device(s, labels);
        {
            fw::RecordFunction rf(s, "## forward ##");
            x = stem_->forward(s, x);
            x = stem_bn_->forward(s, x);
            x = fw::F::relu(s, x);
            x = fw::F::max_pool2d(s, x, 3, 2, 1);
            for (auto& b : blocks_)
                x = b->forward(s, x);
            x = fw::F::adaptive_avg_pool2d(s, x, 1, 1);
            x = fw::F::reshape(s, x, {dims_.batch, -1});
            x = fc_->forward(s, x);
        }
        fw::Tensor logp = fw::F::log_softmax(s, x, 1);
        fw::Tensor loss = fw::F::nll_loss(s, logp, y);
        s.backward(loss);
        if (ddp_)
            ddp_->wait_all(s); // gradients must be averaged before the update
        opt_->step(s);
        opt_->zero_grad();
    }

  private:
    Dims dims_;
    std::unique_ptr<fw::nn::Conv2d> stem_;
    std::unique_ptr<fw::nn::BatchNorm2d> stem_bn_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::unique_ptr<fw::nn::Linear> fc_;
    std::unique_ptr<fw::nn::SGD> opt_;
    std::unique_ptr<fw::nn::DistributedDataParallel> ddp_;
};

std::unique_ptr<Workload>
make_resnet(const WorkloadOptions& opts)
{
    return std::make_unique<ResNet>(opts.preset);
}

} // namespace mystique::wl
