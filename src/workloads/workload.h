#pragma once

/// @file
/// Workload interface and registry for the four evaluated models (§6.2):
/// PARAM linear, ResNet, ASR and RM.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "framework/session.h"

namespace mystique::wl {

/// Size presets.  kPaper approximates the paper's configurations (batch 512
/// / 20 layers for PARAM linear, batch 128 for ResNet, ...) and is meant for
/// shape-only timing runs; kTiny shrinks every dimension for numeric-mode
/// correctness tests.
enum class Preset { kTiny, kPaper };

/// Options common to all workloads.
struct WorkloadOptions {
    Preset preset = Preset::kPaper;
};

/// A trainable model driven by the harness: setup() creates parameters (and
/// process groups in distributed runs); iteration() performs one full
/// training step — input transfer, forward, loss, backward, optimizer.
class Workload {
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual void setup(fw::Session& session) = 0;
    virtual void iteration(fw::Session& session, int iter) = 0;
};

/// Instantiates a workload by name ("param_linear", "resnet", "asr", "rm");
/// throws ConfigError for unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadOptions& opts = {});

/// All registered workload names.
std::vector<std::string> workload_names();

} // namespace mystique::wl
