#pragma once

/// @file
/// Shared includes and factory declarations for the workload implementations.

#include <memory>

#include "framework/fused.h"
#include "framework/functional.h"
#include "framework/nn.h"
#include "workloads/input_gen.h"
#include "workloads/workload.h"

namespace mystique::wl {

std::unique_ptr<Workload> make_param_linear(const WorkloadOptions& opts);
std::unique_ptr<Workload> make_resnet(const WorkloadOptions& opts);
std::unique_ptr<Workload> make_asr(const WorkloadOptions& opts);
std::unique_ptr<Workload> make_rm(const WorkloadOptions& opts);

} // namespace mystique::wl
