/// @file
/// ASR (§6.2): "a production multi-GPU automatic speech recognition training
/// flow implemented with the Fairseq toolkit.  At its core, ASR is a
/// neural-network-based acoustic model."
///
/// Architecture: a 2-layer convolutional subsampling frontend, two custom
/// LSTM layers (fairseq::lstm_layer — *not* replayable by default, the
/// source of ASR's Table 3 execution-time coverage gap), a stack of wide
/// feed-forward blocks, and a CTC-style classifier head (log-softmax + NLL).

#include "workloads/workloads_impl.h"

namespace mystique::wl {

namespace {

struct Dims {
    int64_t batch;
    int64_t frames;   ///< input time steps
    int64_t features; ///< mel features
    int64_t hidden;
    int64_t ffn;
    int64_t vocab;
    int64_t lstm_layers;
    int64_t ffn_blocks;
};

Dims
dims_for(Preset preset)
{
    if (preset == Preset::kTiny)
        return {2, 16, 8, 16, 32, 12, 1, 1};
    return {32, 600, 80, 1024, 4096, 8192, 2, 10};
}

} // namespace

class Asr final : public Workload {
  public:
    explicit Asr(Preset preset) : dims_(dims_for(preset)) {}

    std::string name() const override { return "asr"; }

    void setup(fw::Session& s) override
    {
        conv1_ = std::make_unique<fw::nn::Conv2d>(s, 1, 32, 3, 2, 1);
        conv2_ = std::make_unique<fw::nn::Conv2d>(s, 32, 64, 3, 2, 1);
        const int64_t t4 = dims_.frames / 4;
        const int64_t f4 = dims_.features / 4;
        (void)t4;
        proj_ = std::make_unique<fw::nn::Linear>(s, 64 * f4, dims_.hidden);
        for (int64_t i = 0; i < dims_.lstm_layers; ++i)
            lstms_.emplace_back(s, dims_.hidden, dims_.hidden);
        for (int64_t i = 0; i < dims_.ffn_blocks; ++i) {
            ffn_up_.emplace_back(s, dims_.hidden, dims_.ffn);
            ffn_down_.emplace_back(s, dims_.ffn, dims_.hidden);
        }
        head_ = std::make_unique<fw::nn::Linear>(s, dims_.hidden, dims_.vocab);

        std::vector<fw::Tensor> params;
        auto absorb = [&params](const std::vector<fw::Tensor>& ps) {
            params.insert(params.end(), ps.begin(), ps.end());
        };
        absorb(conv1_->parameters());
        absorb(conv2_->parameters());
        absorb(proj_->parameters());
        for (auto& l : lstms_)
            absorb(l.parameters());
        for (std::size_t i = 0; i < ffn_up_.size(); ++i) {
            absorb(ffn_up_[i].parameters());
            absorb(ffn_down_[i].parameters());
        }
        absorb(head_->parameters());
        opt_ = std::make_unique<fw::nn::SGD>(params, 0.01);
        if (s.options().world_size > 1)
            ddp_ = std::make_unique<fw::nn::DistributedDataParallel>(s, params, 0);
    }

    void iteration(fw::Session& s, int iter) override
    {
        (void)iter;
        if (ddp_)
            ddp_->reset();
        fw::Tensor audio = host_float(s, {dims_.batch, 1, dims_.frames, dims_.features});
        const int64_t t4 = dims_.frames / 4;
        fw::Tensor labels = host_labels(s, t4 * dims_.batch, dims_.vocab);
        fw::Tensor x = fw::F::to_device(s, audio);
        fw::Tensor y = fw::F::to_device(s, labels);
        {
            fw::RecordFunction rf(s, "## encoder ##");
            x = conv1_->forward(s, x);
            x = fw::F::relu(s, x);
            x = conv2_->forward(s, x);
            x = fw::F::relu(s, x);
            // [B, 64, T/4, F/4] → [T/4, B, 64*F/4]
            x = fw::F::transpose(s, x, 0, 2);
            x = fw::F::reshape(s, x, {t4 * dims_.batch, -1});
            x = proj_->forward(s, x);
            x = fw::F::reshape(s, x, {t4, dims_.batch, dims_.hidden});
            for (auto& lstm : lstms_)
                x = lstm.forward(s, x);
            fw::Tensor flat = fw::F::reshape(s, x, {t4 * dims_.batch, dims_.hidden});
            for (std::size_t i = 0; i < ffn_up_.size(); ++i) {
                fw::Tensor h = ffn_up_[i].forward(s, flat);
                h = fw::F::relu(s, h);
                h = ffn_down_[i].forward(s, h);
                h = fw::F::dropout(s, h, 0.1);
                flat = fw::F::add(s, flat, h);
            }
            x = head_->forward(s, flat);
        }
        fw::Tensor logp = fw::F::log_softmax(s, x, 1);
        fw::Tensor loss = fw::F::nll_loss(s, logp, y);
        s.backward(loss);
        if (ddp_)
            ddp_->wait_all(s); // gradients must be averaged before the update
        opt_->step(s);
        opt_->zero_grad();
    }

  private:
    Dims dims_;
    std::unique_ptr<fw::nn::Conv2d> conv1_;
    std::unique_ptr<fw::nn::Conv2d> conv2_;
    std::unique_ptr<fw::nn::Linear> proj_;
    std::vector<fw::nn::LstmLayer> lstms_;
    std::vector<fw::nn::Linear> ffn_up_;
    std::vector<fw::nn::Linear> ffn_down_;
    std::unique_ptr<fw::nn::Linear> head_;
    std::unique_ptr<fw::nn::SGD> opt_;
    std::unique_ptr<fw::nn::DistributedDataParallel> ddp_;
};

std::unique_ptr<Workload>
make_asr(const WorkloadOptions& opts)
{
    return std::make_unique<Asr>(opts.preset);
}

} // namespace mystique::wl
