#include "workloads/workload.h"

#include "common/error.h"
#include "workloads/workloads_impl.h"

namespace mystique::wl {

std::unique_ptr<Workload>
make_workload(const std::string& name, const WorkloadOptions& opts)
{
    if (name == "param_linear")
        return make_param_linear(opts);
    if (name == "resnet")
        return make_resnet(opts);
    if (name == "asr")
        return make_asr(opts);
    if (name == "rm")
        return make_rm(opts);
    MYST_THROW(ConfigError, "unknown workload '" << name
                            << "' (expected param_linear, resnet, asr or rm)");
}

std::vector<std::string>
workload_names()
{
    return {"param_linear", "resnet", "asr", "rm"};
}

} // namespace mystique::wl
