#include "workloads/harness.h"

#include <thread>

#include "common/error.h"
#include "common/stats.h"

namespace mystique::wl {

namespace {

RankResult
run_rank(const std::string& workload_name, const WorkloadOptions& wopts,
         const RunConfig& cfg, int rank, const std::shared_ptr<comm::CommFabric>& fabric)
{
    fw::SessionOptions opts;
    opts.platform = dev::platform(cfg.platform);
    opts.mode = cfg.mode;
    opts.seed = cfg.seed;
    opts.rank = rank;
    opts.world_size = cfg.world_size;
    opts.power_limit_w = cfg.power_limit_w;
    opts.dispatch = fw::DispatchProfile::eager();
    fw::Session session(opts);

    if (fabric != nullptr) {
        // Register the world group under ET pg id 0 before model setup.
        auto pg = std::make_shared<comm::ProcessGroup>(fabric, fabric->world_group(), rank);
        session.add_process_group(0, pg);
    }

    auto workload = make_workload(workload_name, wopts);
    workload->setup(session);

    for (int i = 0; i < cfg.warmup_iterations; ++i) {
        workload->iteration(session, i);
        session.sync_device();
    }

    et::ExecutionTraceObserver et_obs;
    prof::ProfilerSession profiler;
    session.attach_et_observer(&et_obs);
    session.attach_profiler(&profiler);

    RankResult result;
    const sim::TimeUs timed_start = session.sync_device();
    RunningStat stat;
    for (int i = 0; i < cfg.iterations; ++i) {
        const bool traced = cfg.collect_traces && i == 0;
        if (traced) {
            // §4.1: trace a single iteration; all ranks trace the same one.
            et::TraceMeta meta;
            meta.workload = workload_name;
            meta.platform = cfg.platform;
            meta.rank = rank;
            meta.world_size = cfg.world_size;
            meta.iteration = cfg.warmup_iterations;
            meta.seed = cfg.seed;
            meta.process_groups = session.process_group_defs();
            et_obs.set_meta(meta);
            et_obs.start();
            profiler.start();
        }
        const sim::TimeUs t0 = session.cpu_now();
        workload->iteration(session, cfg.warmup_iterations + i);
        const sim::TimeUs t1 = session.sync_device();
        if (traced) {
            et_obs.stop();
            profiler.stop();
        }
        result.iter_us.push_back(t1 - t0);
        stat.add(t1 - t0);
    }
    result.mean_iter_us = stat.mean();
    result.metrics = session.device().metrics(timed_start, session.cpu_now());
    result.trace = et_obs.take_trace();
    result.prof = profiler.take_trace();
    return result;
}

} // namespace

RunResult
run_original(const std::string& workload_name, const WorkloadOptions& wopts,
             const RunConfig& cfg)
{
    MYST_CHECK_MSG(cfg.world_size >= 1, "world_size must be >= 1");
    RunResult result;
    result.ranks.resize(static_cast<std::size_t>(cfg.world_size));

    if (cfg.world_size == 1) {
        result.ranks[0] = run_rank(workload_name, wopts, cfg, 0, nullptr);
    } else {
        auto fabric = std::make_shared<comm::CommFabric>(cfg.world_size,
                                                         comm::NetworkModel(cfg.topology));
        std::vector<std::thread> threads;
        std::vector<std::string> errors(static_cast<std::size_t>(cfg.world_size));
        threads.reserve(static_cast<std::size_t>(cfg.world_size));
        for (int rank = 0; rank < cfg.world_size; ++rank) {
            threads.emplace_back([&, rank] {
                try {
                    result.ranks[static_cast<std::size_t>(rank)] =
                        run_rank(workload_name, wopts, cfg, rank, fabric);
                } catch (const std::exception& e) {
                    errors[static_cast<std::size_t>(rank)] = e.what();
                }
            });
        }
        for (auto& t : threads)
            t.join();
        for (int rank = 0; rank < cfg.world_size; ++rank) {
            if (!errors[static_cast<std::size_t>(rank)].empty())
                MYST_THROW(MystiqueError,
                           "rank " + std::to_string(rank) +
                               " failed: " + errors[static_cast<std::size_t>(rank)]);
        }
    }

    RunningStat stat;
    for (const auto& r : result.ranks)
        stat.add(r.mean_iter_us);
    result.mean_iter_us = stat.mean();
    return result;
}

} // namespace mystique::wl
