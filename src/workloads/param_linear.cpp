/// @file
/// PARAM linear (§6.2): "a representative linear model with 20 linear layers,
/// batch size 512, float32" from the PARAM benchmark suite.  In distributed
/// runs it trains under DDP, as the paper's Figure 4 / Table 4 configuration.

#include "workloads/workloads_impl.h"

namespace mystique::wl {

namespace {

struct Dims {
    int64_t batch;
    int64_t hidden;
    int64_t layers;
};

Dims
dims_for(Preset preset)
{
    if (preset == Preset::kTiny)
        return {4, 16, 3};
    return {512, 2048, 20};
}

} // namespace

class ParamLinear final : public Workload {
  public:
    explicit ParamLinear(Preset preset) : dims_(dims_for(preset)) {}

    std::string name() const override { return "param_linear"; }

    void setup(fw::Session& s) override
    {
        std::vector<fw::Tensor> params;
        for (int64_t i = 0; i < dims_.layers; ++i) {
            layers_.emplace_back(s, dims_.hidden, dims_.hidden);
            for (auto& p : layers_.back().parameters())
                params.push_back(p);
        }
        opt_ = std::make_unique<fw::nn::SGD>(params, 0.01);
        if (s.options().world_size > 1)
            ddp_ = std::make_unique<fw::nn::DistributedDataParallel>(s, params, 0);
    }

    void iteration(fw::Session& s, int iter) override
    {
        (void)iter;
        if (ddp_)
            ddp_->reset();
        fw::Tensor input = host_float(s, {dims_.batch, dims_.hidden});
        fw::Tensor x = fw::F::to_device(s, input);
        {
            fw::RecordFunction rf(s, "## forward ##");
            for (auto& layer : layers_) {
                x = layer.forward(s, x);
                x = fw::F::relu(s, x);
            }
        }
        fw::Tensor loss = s.call_t(MYST_OP("aten::mean"), {fw::IValue(x)});
        s.backward(loss);
        if (ddp_)
            ddp_->wait_all(s); // gradients must be averaged before the update
        opt_->step(s);
        opt_->zero_grad();
    }

  private:
    Dims dims_;
    std::vector<fw::nn::Linear> layers_;
    std::unique_ptr<fw::nn::SGD> opt_;
    std::unique_ptr<fw::nn::DistributedDataParallel> ddp_;
};

std::unique_ptr<Workload>
make_param_linear(const WorkloadOptions& opts)
{
    return std::make_unique<ParamLinear>(opts.preset);
}

} // namespace mystique::wl
