#pragma once

/// @file
/// PyTorch operator-schema parsing (§4.3.1).
///
/// The replayer reconstructs each ATen operator from the schema string
/// captured in its ET node, e.g.
///
///   "aten::add.Tensor(Tensor self, Tensor other, *, Scalar alpha=1) -> Tensor"
///
/// The string-based parser below extracts the operator name, overload, the
/// ordered argument list (name/type/default/kwarg-only) and the return types.

#include <optional>
#include <string>
#include <vector>

namespace mystique::jit {

/// One schema argument.
struct SchemaArg {
    std::string name;
    /// Normalized type: "Tensor", "Tensor?", "Tensor[]", "Scalar", "int",
    /// "int[]", "float", "bool", "str" (alias annotations like "(a!)" are
    /// stripped; sized lists like "int[2]" normalize to "int[]").
    std::string type;
    std::optional<std::string> default_value;
    bool kwarg_only = false;

    bool is_tensor_like() const
    {
        return type == "Tensor" || type == "Tensor?" || type == "Tensor[]";
    }
};

/// A parsed operator schema.
struct FunctionSchema {
    /// Qualified base name, e.g. "aten::add".
    std::string name;
    /// Overload, e.g. "Tensor" in "aten::add.Tensor" (empty when none).
    std::string overload;
    std::vector<SchemaArg> args;
    std::vector<std::string> returns;

    /// "aten::add.Tensor" — the registry key.
    std::string qualified_name() const
    {
        return overload.empty() ? name : name + "." + overload;
    }
};

/// Parses a schema string; throws ParseError on malformed input.
FunctionSchema parse_schema(const std::string& schema);

} // namespace mystique::jit
