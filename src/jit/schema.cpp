#include "jit/schema.h"

#include "common/error.h"
#include "common/string_util.h"

namespace mystique::jit {

namespace {

/// Strips alias annotations: "Tensor(a!)" → "Tensor", "Tensor(a)" → "Tensor".
std::string
normalize_type(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    bool in_paren = false;
    for (char c : raw) {
        if (c == '(') {
            in_paren = true;
        } else if (c == ')') {
            in_paren = false;
        } else if (!in_paren) {
            out += c;
        }
    }
    // Normalize sized lists: int[2] → int[].
    const auto lb = out.find('[');
    if (lb != std::string::npos) {
        const auto rb = out.find(']', lb);
        if (rb != std::string::npos && rb > lb + 1)
            out = out.substr(0, lb + 1) + out.substr(rb);
    }
    return std::string(trim(out));
}

SchemaArg
parse_arg(std::string_view text, bool kwarg_only)
{
    SchemaArg arg;
    arg.kwarg_only = kwarg_only;
    std::string_view body = trim(text);
    // Split off a default value at the top level.
    std::string default_part;
    const auto pieces = split_top_level(body, '=');
    if (pieces.size() == 2) {
        body = trim(pieces[0]);
        arg.default_value = std::string(trim(pieces[1]));
    } else if (pieces.size() > 2) {
        MYST_THROW(ParseError, "schema arg has multiple '=': " << text);
    }
    // The last space-separated token is the name; everything before is type.
    const auto last_space = body.rfind(' ');
    if (last_space == std::string_view::npos)
        MYST_THROW(ParseError, "schema arg missing name: " << text);
    arg.type = normalize_type(body.substr(0, last_space));
    arg.name = std::string(trim(body.substr(last_space + 1)));
    if (arg.type.empty() || arg.name.empty())
        MYST_THROW(ParseError, "schema arg malformed: " << text);
    return arg;
}

} // namespace

FunctionSchema
parse_schema(const std::string& schema)
{
    FunctionSchema fs;
    const auto lparen = schema.find('(');
    if (lparen == std::string::npos)
        MYST_THROW(ParseError, "schema missing '(': " << schema);

    // Name and overload.
    std::string full_name(trim(schema.substr(0, lparen)));
    const auto dot = full_name.find('.', full_name.find("::") == std::string::npos
                                             ? 0
                                             : full_name.find("::") + 2);
    if (dot != std::string::npos) {
        fs.name = full_name.substr(0, dot);
        fs.overload = full_name.substr(dot + 1);
    } else {
        fs.name = full_name;
    }

    // Argument list: find the matching ')' at depth 0.
    int depth = 0;
    std::size_t rparen = std::string::npos;
    for (std::size_t i = lparen; i < schema.size(); ++i) {
        if (schema[i] == '(')
            ++depth;
        else if (schema[i] == ')' && --depth == 0) {
            rparen = i;
            break;
        }
    }
    if (rparen == std::string::npos)
        MYST_THROW(ParseError, "schema missing ')': " << schema);

    const std::string arg_text = schema.substr(lparen + 1, rparen - lparen - 1);
    bool kwarg_only = false;
    for (const auto& piece : split_top_level(arg_text, ',')) {
        const auto t = trim(piece);
        if (t.empty())
            continue;
        if (t == "*") {
            kwarg_only = true;
            continue;
        }
        fs.args.push_back(parse_arg(t, kwarg_only));
    }

    // Returns.
    const auto arrow = schema.find("->", rparen);
    if (arrow == std::string::npos)
        MYST_THROW(ParseError, "schema missing '->': " << schema);
    std::string_view ret = trim(std::string_view(schema).substr(arrow + 2));
    if (ret == "()") {
        // no returns
    } else if (!ret.empty() && ret.front() == '(') {
        if (ret.back() != ')')
            MYST_THROW(ParseError, "schema return tuple malformed: " << schema);
        for (const auto& piece : split_top_level(ret.substr(1, ret.size() - 2), ','))
            fs.returns.push_back(normalize_type(trim(piece)));
    } else {
        fs.returns.push_back(normalize_type(ret));
    }
    return fs;
}

} // namespace mystique::jit
