#pragma once

/// @file
/// A textual IR mirroring TorchScript graphs, with builder, parser and an
/// interpreter ("CompilationUnit").  The replayer compiles every recorded
/// ATen operator into one of these callables during initialization, exactly
/// as the paper does with torch._C.parse_ir (§4.3.1):
///
///   graph(%self.1 : Tensor,
///         %other.1 : Tensor):
///     %4 : int = prim::Constant[value=1]()
///     %5 : Tensor = aten::add.Tensor(%self.1, %other.1, %4)
///     return (%5)
///
/// Non-tensor arguments recorded in the ET become prim::Constant nodes;
/// tensor arguments become graph inputs.

#include <memory>
#include <string>
#include <vector>

#include "common/op_id.h"
#include "framework/ivalue.h"
#include "jit/schema.h"

namespace mystique::fw {
class Session;
}

namespace mystique::jit {

/// A constant literal in the IR.
///
/// kTensorInput is a builder-side marker (never rendered): it flags an
/// argument position as a tensor supplied at call time, so that optional
/// Tensor? slots can distinguish "present tensor" from "recorded None".
struct Constant {
    enum class Kind { kNone, kInt, kFloat, kBool, kIntList, kString, kTensorInput };
    Kind kind = Kind::kNone;
    int64_t int_value = 0;
    double float_value = 0.0;
    bool bool_value = false;
    std::vector<int64_t> int_list;
    std::string string_value;

    /// Renders "prim::Constant[value=...]" payload text.
    std::string render() const;
    /// Converts to the runtime argument value.
    fw::IValue to_ivalue() const;
};

/// One IR node: either a prim::Constant or an operator call.
struct IrNode {
    std::vector<std::string> outputs;      ///< "%5"
    std::vector<std::string> output_types; ///< "Tensor"
    std::string op;                        ///< "prim::Constant" or "aten::addmm"
    Constant constant;                     ///< valid when op == prim::Constant
    std::vector<std::string> inputs;       ///< "%x.1", "%4"
    /// Interned identity of `op`, resolved once when the Function is
    /// compiled (lazily for ops registered later), so the interpreter's
    /// per-node dispatch never re-hashes the name.  A cache filled through
    /// the const graph the interpreter walks.
    OpIdCache op_id;
};

/// A parsed graph.
struct Graph {
    std::vector<std::string> input_names; ///< "%self.1"
    std::vector<std::string> input_types; ///< "Tensor"
    std::vector<IrNode> nodes;
    std::vector<std::string> return_values;

    /// Renders canonical IR text.
    std::string render() const;
};

/// Builds IR text for one recorded operator invocation.
///
/// @param schema  the parsed operator schema
/// @param constant_args  per-argument constants; entries for tensor-like
///        positions are ignored (those become graph inputs).  Size must
///        equal schema.args.size().
std::string build_ir_text(const FunctionSchema& schema,
                          const std::vector<Constant>& constant_args);

/// Parses IR text into a Graph; throws ParseError on malformed input.
Graph parse_ir(const std::string& text);

/// A compiled callable over a Graph.
class Function {
  public:
    Function(std::string name, Graph graph);

    const std::string& name() const { return name_; }
    const Graph& graph() const { return graph_; }

    /// Executes the graph: binds @p tensor_inputs to the graph inputs in
    /// order, materializes constants, dispatches operator nodes through the
    /// session, and returns the graph's return values.
    std::vector<fw::IValue> run(fw::Session& sess,
                                const std::vector<fw::IValue>& tensor_inputs) const;

  private:
    std::string name_;
    Graph graph_;
};

/// Owns compiled functions (torch._C.CompilationUnit analogue).
class CompilationUnit {
  public:
    /// Compiles a graph into a named function and retains it.
    const Function& create_function(const std::string& name, Graph graph);

    const Function* find(const std::string& name) const;
    std::size_t size() const { return functions_.size(); }

  private:
    std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace mystique::jit
