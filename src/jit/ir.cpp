#include "jit/ir.h"

#include <charconv>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"
#include "framework/session.h"

namespace mystique::jit {

std::string
Constant::render() const
{
    switch (kind) {
      case Kind::kNone:
        return "prim::Constant()";
      case Kind::kInt:
        return strprintf("prim::Constant[value=%lld]()", static_cast<long long>(int_value));
      case Kind::kFloat: {
        std::ostringstream os;
        os << "prim::Constant[value=" << float_value;
        if (float_value == static_cast<int64_t>(float_value))
            os << ".";
        os << "]()";
        return os.str();
      }
      case Kind::kBool:
        return strprintf("prim::Constant[value=%s]()", bool_value ? "True" : "False");
      case Kind::kIntList: {
        std::ostringstream os;
        os << "prim::Constant[value=[";
        for (std::size_t i = 0; i < int_list.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << int_list[i];
        }
        os << "]]()";
        return os.str();
      }
      case Kind::kString:
        return strprintf("prim::Constant[value=\"%s\"]()", string_value.c_str());
      case Kind::kTensorInput:
        break; // builder-side marker; never rendered
    }
    return "prim::Constant()";
}

fw::IValue
Constant::to_ivalue() const
{
    switch (kind) {
      case Kind::kNone: return fw::IValue::none();
      case Kind::kInt: return fw::IValue(int_value);
      case Kind::kFloat: return fw::IValue(float_value);
      case Kind::kBool: return fw::IValue(bool_value);
      case Kind::kIntList: return fw::IValue(int_list);
      case Kind::kString: return fw::IValue(string_value);
    }
    return fw::IValue::none();
}

namespace {

const char*
const_type_name(Constant::Kind k)
{
    switch (k) {
      case Constant::Kind::kNone: return "NoneType";
      case Constant::Kind::kInt: return "int";
      case Constant::Kind::kFloat: return "float";
      case Constant::Kind::kBool: return "bool";
      case Constant::Kind::kIntList: return "int[]";
      case Constant::Kind::kString: return "str";
    }
    return "?";
}

} // namespace

std::string
Graph::render() const
{
    std::ostringstream os;
    os << "graph(";
    for (std::size_t i = 0; i < input_names.size(); ++i) {
        if (i > 0)
            os << ",\n      ";
        os << input_names[i] << " : " << input_types[i];
    }
    os << "):\n";
    for (const auto& n : nodes) {
        os << "  ";
        for (std::size_t i = 0; i < n.outputs.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << n.outputs[i] << " : " << n.output_types[i];
        }
        os << " = ";
        if (n.op == "prim::Constant") {
            os << n.constant.render();
        } else {
            os << n.op << "(";
            for (std::size_t i = 0; i < n.inputs.size(); ++i) {
                if (i > 0)
                    os << ", ";
                os << n.inputs[i];
            }
            os << ")";
        }
        os << "\n";
    }
    os << "  return (";
    for (std::size_t i = 0; i < return_values.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << return_values[i];
    }
    os << ")\n";
    return os.str();
}

std::string
build_ir_text(const FunctionSchema& schema, const std::vector<Constant>& constant_args)
{
    MYST_CHECK_MSG(constant_args.size() == schema.args.size(),
                   "constant_args size mismatch for " << schema.qualified_name());
    Graph g;
    int next_id = 0;
    std::vector<std::string> call_inputs;

    // Tensor-like args become graph inputs; others become constants.  An
    // optional Tensor? slot recorded as None becomes a constant None.
    for (std::size_t i = 0; i < schema.args.size(); ++i) {
        const auto& arg = schema.args[i];
        const bool absent_optional =
            arg.type == "Tensor?" && constant_args[i].kind == Constant::Kind::kNone;
        if (arg.is_tensor_like() && !absent_optional) {
            std::string name = "%" + arg.name + "." + std::to_string(++next_id);
            g.input_names.push_back(name);
            g.input_types.push_back(arg.type);
            call_inputs.push_back(name);
            continue;
        }
        // Constant node.
        Constant value = constant_args[i];
        if (absent_optional)
            value = Constant{}; // None
        IrNode c;
        std::string vname = "%" + std::to_string(++next_id + 100);
        c.outputs = {vname};
        c.output_types = {const_type_name(value.kind)};
        c.op = "prim::Constant";
        c.constant = value;
        g.nodes.push_back(std::move(c));
        call_inputs.push_back(vname);
    }

    IrNode call;
    call.op = schema.qualified_name();
    call.inputs = std::move(call_inputs);
    const std::size_t n_rets = schema.returns.empty() ? 0 : schema.returns.size();
    for (std::size_t r = 0; r < n_rets; ++r) {
        call.outputs.push_back("%" + std::to_string(++next_id + 200));
        call.output_types.push_back(schema.returns[r]);
    }
    std::vector<std::string> rets = call.outputs;
    g.nodes.push_back(std::move(call));
    g.return_values = std::move(rets);
    return g.render();
}

namespace {

/// Line-oriented IR parser.
class IrParser {
  public:
    explicit IrParser(const std::string& text) : text_(text) {}

    Graph parse()
    {
        Graph g;
        std::string header = read_until("):");
        parse_header(header, g);
        std::string rest = text_.substr(pos_);
        for (const auto& raw_line : split(rest, '\n')) {
            const auto line = trim(raw_line);
            if (line.empty())
                continue;
            if (starts_with(line, "return")) {
                parse_return(line, g);
            } else {
                parse_node(line, g);
            }
        }
        return g;
    }

  private:
    [[noreturn]] void fail(const std::string& msg) const
    {
        MYST_THROW(ParseError, "IR: " << msg);
    }

    std::string read_until(const std::string& delim)
    {
        const auto p = text_.find(delim, pos_);
        if (p == std::string::npos)
            fail("missing '" + delim + "'");
        std::string out = text_.substr(pos_, p - pos_);
        pos_ = p + delim.size();
        return out;
    }

    void parse_header(const std::string& header, Graph& g)
    {
        const auto lparen = header.find('(');
        if (lparen == std::string::npos || trim(header.substr(0, lparen)) != "graph")
            fail("expected 'graph('");
        const std::string args = header.substr(lparen + 1);
        for (const auto& piece : split_top_level(args, ',')) {
            const auto t = trim(piece);
            if (t.empty())
                continue;
            const auto colon = t.find(':');
            if (colon == std::string_view::npos)
                fail("graph input missing type: " + std::string(t));
            g.input_names.emplace_back(trim(t.substr(0, colon)));
            g.input_types.emplace_back(trim(t.substr(colon + 1)));
        }
    }

    static Constant parse_constant_payload(std::string_view expr)
    {
        Constant c;
        const auto lb = expr.find("[value=");
        if (lb == std::string_view::npos) {
            c.kind = Constant::Kind::kNone;
            return c;
        }
        // payload extends to the matching "]" before "()"
        const auto start = lb + 7;
        const auto end = expr.rfind("]()");
        if (end == std::string_view::npos || end < start)
            MYST_THROW(ParseError, "IR: malformed constant: " << expr);
        std::string_view payload = trim(expr.substr(start, end - start));
        if (payload == "True" || payload == "False") {
            c.kind = Constant::Kind::kBool;
            c.bool_value = payload == "True";
        } else if (!payload.empty() && payload.front() == '"') {
            c.kind = Constant::Kind::kString;
            c.string_value = std::string(payload.substr(1, payload.size() - 2));
        } else if (!payload.empty() && payload.front() == '[') {
            c.kind = Constant::Kind::kIntList;
            const auto inner = payload.substr(1, payload.size() - 2);
            for (const auto& tok : split_top_level(inner, ',')) {
                const auto t = trim(tok);
                if (t.empty())
                    continue;
                int64_t v = 0;
                auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
                if (ec != std::errc())
                    MYST_THROW(ParseError, "IR: bad int list element: " << t);
                c.int_list.push_back(v);
            }
        } else if (payload.find('.') != std::string_view::npos ||
                   payload.find('e') != std::string_view::npos) {
            c.kind = Constant::Kind::kFloat;
            c.float_value = std::stod(std::string(payload));
        } else {
            c.kind = Constant::Kind::kInt;
            auto [p, ec] = std::from_chars(payload.data(), payload.data() + payload.size(),
                                           c.int_value);
            if (ec != std::errc())
                MYST_THROW(ParseError, "IR: bad int constant: " << payload);
        }
        return c;
    }

    void parse_node(std::string_view line, Graph& g)
    {
        const auto eq = line.find(" = ");
        if (eq == std::string_view::npos)
            fail("node missing '=': " + std::string(line));
        IrNode node;
        for (const auto& out : split_top_level(line.substr(0, eq), ',')) {
            const auto t = trim(out);
            const auto colon = t.find(':');
            if (colon == std::string_view::npos)
                fail("node output missing type: " + std::string(t));
            node.outputs.emplace_back(trim(t.substr(0, colon)));
            node.output_types.emplace_back(trim(t.substr(colon + 1)));
        }
        std::string_view expr = trim(line.substr(eq + 3));
        if (starts_with(expr, "prim::Constant")) {
            node.op = "prim::Constant";
            node.constant = parse_constant_payload(expr);
        } else {
            const auto lparen = expr.find('(');
            if (lparen == std::string_view::npos || expr.back() != ')')
                fail("node call malformed: " + std::string(expr));
            node.op = std::string(trim(expr.substr(0, lparen)));
            const auto inner = expr.substr(lparen + 1, expr.size() - lparen - 2);
            for (const auto& tok : split_top_level(inner, ',')) {
                const auto t = trim(tok);
                if (!t.empty())
                    node.inputs.emplace_back(t);
            }
        }
        g.nodes.push_back(std::move(node));
    }

    void parse_return(std::string_view line, Graph& g)
    {
        const auto lparen = line.find('(');
        const auto rparen = line.rfind(')');
        if (lparen == std::string_view::npos || rparen == std::string_view::npos)
            fail("return malformed");
        for (const auto& tok :
             split_top_level(line.substr(lparen + 1, rparen - lparen - 1), ',')) {
            const auto t = trim(tok);
            if (!t.empty())
                g.return_values.emplace_back(t);
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

Graph
parse_ir(const std::string& text)
{
    return IrParser(text).parse();
}

Function::Function(std::string name, Graph graph)
    : name_(std::move(name)), graph_(std::move(graph))
{
    // Resolve operator identities once at compile time (§4.3.4: all
    // reconstruction work happens during initialization).  Ops not yet
    // registered stay unresolved and are retried lazily by run().
    for (const auto& node : graph_.nodes) {
        if (node.op == "prim::Constant")
            continue;
        if (const fw::OpDef* def = fw::OpRegistry::instance().find(node.op))
            node.op_id.store(def->id);
    }
}

std::vector<fw::IValue>
Function::run(fw::Session& sess, const std::vector<fw::IValue>& tensor_inputs) const
{
    if (tensor_inputs.size() != graph_.input_names.size())
        MYST_THROW(ReplayError, "compiled fn '" << name_ << "' expects "
                                                << graph_.input_names.size()
                                                << " inputs, got " << tensor_inputs.size());
    std::unordered_map<std::string, fw::IValue> env;
    for (std::size_t i = 0; i < tensor_inputs.size(); ++i)
        env[graph_.input_names[i]] = tensor_inputs[i];

    for (const auto& node : graph_.nodes) {
        if (node.op == "prim::Constant") {
            env[node.outputs.at(0)] = node.constant.to_ivalue();
            continue;
        }
        std::vector<fw::IValue> args;
        args.reserve(node.inputs.size());
        for (const auto& in : node.inputs) {
            auto it = env.find(in);
            if (it == env.end())
                MYST_THROW(ReplayError, "IR value '" << in << "' undefined in " << name_);
            args.push_back(it->second);
        }
        OpId op_id = node.op_id.load();
        if (op_id == kInvalidOpId) {
            if (const fw::OpDef* def = fw::OpRegistry::instance().find(node.op)) {
                op_id = def->id;
                node.op_id.store(op_id);
            }
        }
        std::vector<fw::IValue> outs = op_id != kInvalidOpId
                                           ? sess.call(op_id, std::move(args))
                                           : sess.call(node.op, std::move(args));
        for (std::size_t i = 0; i < node.outputs.size() && i < outs.size(); ++i)
            env[node.outputs[i]] = outs[i];
    }

    std::vector<fw::IValue> rets;
    rets.reserve(graph_.return_values.size());
    for (const auto& r : graph_.return_values) {
        auto it = env.find(r);
        if (it == env.end())
            MYST_THROW(ReplayError, "IR return value '" << r << "' undefined in " << name_);
        rets.push_back(it->second);
    }
    return rets;
}

const Function&
CompilationUnit::create_function(const std::string& name, Graph graph)
{
    functions_.push_back(std::make_unique<Function>(name, std::move(graph)));
    return *functions_.back();
}

const Function*
CompilationUnit::find(const std::string& name) const
{
    for (const auto& f : functions_) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

} // namespace mystique::jit
