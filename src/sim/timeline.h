#pragma once

/// @file
/// Virtual-time primitives.
///
/// The simulator uses *timestamp propagation* rather than a central event
/// queue: every actor (CPU thread, GPU stream, collective) carries a virtual
/// clock in microseconds, and each action advances clocks with
/// `start = max(actor ready, dependencies ready)`.  This is deterministic,
/// fast, and exactly sufficient for the FIFO-stream + rendezvous-collective
/// semantics the paper's workloads exhibit.

#include <cstdint>
#include <string>
#include <vector>

namespace mystique::sim {

/// Virtual time in microseconds since run start.
using TimeUs = double;

/// A half-open busy interval [start, end) attributed to some actor.
struct Interval {
    TimeUs start = 0.0;
    TimeUs end = 0.0;

    TimeUs duration() const { return end - start; }
    bool overlaps(const Interval& other) const { return start < other.end && other.start < end; }
};

/// Total length of the union of intervals (overlaps counted once).
TimeUs union_length(std::vector<Interval> intervals);

/// Earliest start and latest end over @p intervals; {0,0} when empty.
Interval span(const std::vector<Interval>& intervals);

/// The portion of @p target NOT covered by any interval in @p others.
///
/// This is the "exposed time" notion from the paper's Figure 2: a
/// communication kernel's exposed GPU time is the part of its duration during
/// which no computation kernel is running in parallel.
TimeUs exposed_time(const Interval& target, const std::vector<Interval>& others);

/// Sum of exposed times of @p targets against @p others.
TimeUs total_exposed_time(const std::vector<Interval>& targets,
                          const std::vector<Interval>& others);

/// Contended multi-stream busy model for one device over one window (an
/// iteration, in the replayer's use).
///
/// Feed it every kernel interval with its stream id; it then answers three
/// questions about the window:
///
///  - `serialized_length()` — the timeline the old single-stream executor
///    produced: every kernel back to back, Σ durations.
///  - `span_end()` — the uncontended concurrent finish: latest interval end,
///    assuming streams overlap for free.
///  - `contended_finish(alpha)` — span_end plus a contention penalty
///    `alpha * overlap_excess()`, where overlap_excess is the total busy
///    time that actually ran concurrently with another stream
///    (Σ per-stream busy unions − union across all streams).  alpha = 0 is
///    the ideal-overlap model; alpha → ∞ degrades toward full serialization.
///
/// The model is a pure function of the interval multiset — independent of
/// insertion order — which is what lets the async executor keep bit-identical
/// timelines at every parallelism level.
class MultiStreamTimeline {
  public:
    /// Records one busy interval on @p stream.
    void add(int stream, Interval iv);

    /// Latest interval end (0 when empty): the uncontended finish time.
    TimeUs span_end() const;

    /// Sum of all durations: the fully serialized timeline length.
    TimeUs serialized_length() const;

    /// Busy time running concurrently with at least one other stream:
    /// Σ per-stream union lengths − union length across all streams.
    TimeUs overlap_excess() const;

    /// span_end() + alpha * overlap_excess().
    TimeUs contended_finish(TimeUs alpha) const;

    /// Number of distinct streams that received at least one interval.
    std::size_t stream_count() const { return per_stream_.size(); }

    void reset() { per_stream_.clear(); }

  private:
    // stream id → its intervals, ordered by id so results never depend on
    // insertion order.
    std::vector<std::pair<int, std::vector<Interval>>> per_stream_;
};

/// Monotonically advancing virtual clock for one actor.
class VirtualClock {
  public:
    /// Current time.
    TimeUs now() const { return now_; }

    /// Moves forward by @p dur (must be >= 0); returns the new time.
    TimeUs advance(TimeUs dur);

    /// Jumps forward to @p t if it is later than now; returns the new time.
    TimeUs advance_to(TimeUs t);

    /// Resets to @p t (used at run start only).
    void reset(TimeUs t = 0.0) { now_ = t; }

  private:
    TimeUs now_ = 0.0;
};

} // namespace mystique::sim
