#include "sim/timeline.h"

#include <algorithm>

#include "common/error.h"

namespace mystique::sim {

TimeUs
union_length(std::vector<Interval> intervals)
{
    if (intervals.empty())
        return 0.0;
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    TimeUs total = 0.0;
    TimeUs cur_start = intervals[0].start;
    TimeUs cur_end = intervals[0].end;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
        const auto& iv = intervals[i];
        if (iv.start <= cur_end) {
            cur_end = std::max(cur_end, iv.end);
        } else {
            total += cur_end - cur_start;
            cur_start = iv.start;
            cur_end = iv.end;
        }
    }
    total += cur_end - cur_start;
    return total;
}

Interval
span(const std::vector<Interval>& intervals)
{
    if (intervals.empty())
        return {};
    Interval s{intervals[0].start, intervals[0].end};
    for (const auto& iv : intervals) {
        s.start = std::min(s.start, iv.start);
        s.end = std::max(s.end, iv.end);
    }
    return s;
}

TimeUs
exposed_time(const Interval& target, const std::vector<Interval>& others)
{
    // Clip others to the target window, take union, subtract.
    std::vector<Interval> clipped;
    clipped.reserve(others.size());
    for (const auto& o : others) {
        if (!o.overlaps(target))
            continue;
        clipped.push_back({std::max(o.start, target.start), std::min(o.end, target.end)});
    }
    const TimeUs covered = union_length(std::move(clipped));
    return std::max(0.0, target.duration() - covered);
}

TimeUs
total_exposed_time(const std::vector<Interval>& targets, const std::vector<Interval>& others)
{
    TimeUs total = 0.0;
    for (const auto& t : targets)
        total += exposed_time(t, others);
    return total;
}

void
MultiStreamTimeline::add(int stream, Interval iv)
{
    auto it = std::find_if(per_stream_.begin(), per_stream_.end(),
                           [&](const auto& p) { return p.first == stream; });
    if (it == per_stream_.end()) {
        it = per_stream_.insert(
            std::upper_bound(per_stream_.begin(), per_stream_.end(), stream,
                             [](int s, const auto& p) { return s < p.first; }),
            {stream, {}});
    }
    it->second.push_back(iv);
}

TimeUs
MultiStreamTimeline::span_end() const
{
    TimeUs end = 0.0;
    for (const auto& [stream, ivs] : per_stream_)
        for (const Interval& iv : ivs)
            end = std::max(end, iv.end);
    return end;
}

TimeUs
MultiStreamTimeline::serialized_length() const
{
    TimeUs total = 0.0;
    for (const auto& [stream, ivs] : per_stream_)
        for (const Interval& iv : ivs)
            total += iv.duration();
    return total;
}

TimeUs
MultiStreamTimeline::overlap_excess() const
{
    std::vector<Interval> all;
    TimeUs per_stream_busy = 0.0;
    for (const auto& [stream, ivs] : per_stream_) {
        per_stream_busy += union_length(ivs);
        all.insert(all.end(), ivs.begin(), ivs.end());
    }
    const TimeUs device_busy = union_length(std::move(all));
    return std::max(0.0, per_stream_busy - device_busy);
}

TimeUs
MultiStreamTimeline::contended_finish(TimeUs alpha) const
{
    return span_end() + alpha * overlap_excess();
}

TimeUs
VirtualClock::advance(TimeUs dur)
{
    MYST_CHECK_MSG(dur >= 0.0, "negative clock advance: " << dur);
    now_ += dur;
    return now_;
}

TimeUs
VirtualClock::advance_to(TimeUs t)
{
    if (t > now_)
        now_ = t;
    return now_;
}

} // namespace mystique::sim
