#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Mirrors .github/workflows/ci.yml for local / non-Actions runners.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"
