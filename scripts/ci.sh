#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Mirrors .github/workflows/ci.yml for local / non-Actions runners.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# Surface the perf-gate summaries in the CI log (all already ran — and
# gated — under ctest; this re-run just makes the numbers easy to find).
echo "== bench summaries =="
./bench_micro_plan_cache | grep -E "micro_plan_cache_json:|^OK:|^FAIL:"
./bench_micro_arena | grep -E "micro_arena_json:|^OK:|^FAIL:"
./bench_micro_codegen | grep -E "micro_codegen_json:|^OK:|^FAIL:"
./bench_micro_plan_disk | grep -E "micro_plan_disk_json:|^OK:|^FAIL:"
./bench_micro_fusion | grep -E "micro_fusion_json:|^OK:|^FAIL:"
./bench_micro_async | grep -E "micro_async_json:|^OK:|^FAIL:"

# Cross-process plan reuse: two sweeps of the same database in SEPARATE
# processes sharing one MYST_PLAN_CACHE_DIR.  The first builds and persists
# every group's plan; the second must do zero plan builds (all disk hits)
# and report bit-identical results — also under poisoned arena recycling.
echo "== cross-process plan-store reuse =="
plan_store_dir=$(mktemp -d)
trap 'rm -rf "$plan_store_dir"' EXIT
./example_cross_process_sweep "$plan_store_dir" cold | tee /tmp/myst_sweep_cold.txt
./example_cross_process_sweep "$plan_store_dir" warm | tee /tmp/myst_sweep_warm.txt
MYST_ARENA_POISON=1 ./example_cross_process_sweep "$plan_store_dir" warm \
    | tee /tmp/myst_sweep_warm_poison.txt
for f in /tmp/myst_sweep_warm.txt /tmp/myst_sweep_warm_poison.txt; do
    if ! diff <(grep '^result:' /tmp/myst_sweep_cold.txt) <(grep '^result:' "$f"); then
        echo "FAIL: cross-process sweep results diverged ($f)"
        exit 1
    fi
done
echo "cross-process reuse OK: second process did zero plan builds, results bit-identical"

# Read-before-write sentinel: recycled arena buffers are not zeroed, so run
# the suite once with poisoned recycling (0xFF fill) to flush any kernel that
# reads an output buffer before writing it.
echo "== poisoned-arena test pass =="
MYST_ARENA_POISON=1 ctest --output-on-failure -j "$(nproc)"

# Optimizer opt-out pass: the whole suite must also hold with verbatim
# plans (MYST_OPT_LEVEL=0) — fusion is a pure perf layer, never a
# correctness dependency.  micro_fusion itself sets opt_level explicitly
# per plan, so its gates still exercise fused replay under this pass.
echo "== verbatim-plan (MYST_OPT_LEVEL=0) test pass =="
MYST_OPT_LEVEL=0 ctest --output-on-failure -j "$(nproc)"

# Serial-executor opt-out pass: the whole suite must also hold with the
# multi-stream async executor disabled (MYST_ASYNC=0) — async execution is
# a pure perf layer, never a correctness dependency.  micro_async itself
# sets async_level explicitly per config, so its gates still exercise the
# async executor under this pass.
echo "== serial-executor (MYST_ASYNC=0) test pass =="
MYST_ASYNC=0 ctest --output-on-failure -j "$(nproc)"

# Fuzz smoke corpus: fixed-seed randomized traces through the differential
# oracle (replay-vs-direct, opt-level invariance, plan round-trip, key
# stability, K=1-vs-K=4 sweep bit-identity).  Fixed seed => deterministic
# corpus; failures print `--case <seed>` repro lines.  MYST_FUZZ_ITERS
# cranks the corpus size for longer scheduled runs (see docs/fuzzing.md).
echo "== fuzz smoke corpus =="
./mystique-fuzz --seed 7 --iters "${MYST_FUZZ_ITERS:-25}"

# Fault-injection churn: every registered fault site fires under 8-thread
# plan-cache churn, with poisoned arena recycling for good measure — never
# a crash, never a torn file, never a wrong plan, and the store heals.
echo "== fault-injection churn =="
MYST_ARENA_POISON=1 ./mystique-fuzz --seed 7 --churn

# Docs must not drift from the code: every env var, symbol, and file path
# referenced from README.md / docs/ has to exist in the tree.
echo "== doc-link check =="
cd ..
./scripts/check_docs.sh
