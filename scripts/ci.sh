#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# Mirrors .github/workflows/ci.yml for local / non-Actions runners.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

# Surface the perf-gate summaries in the CI log (all already ran — and
# gated — under ctest; this re-run just makes the numbers easy to find).
echo "== bench summaries =="
./bench_micro_plan_cache | grep -E "micro_plan_cache_json:|^OK:|^FAIL:"
./bench_micro_arena | grep -E "micro_arena_json:|^OK:|^FAIL:"
./bench_micro_codegen | grep -E "micro_codegen_json:|^OK:|^FAIL:"

# Read-before-write sentinel: recycled arena buffers are not zeroed, so run
# the suite once with poisoned recycling (0xFF fill) to flush any kernel that
# reads an output buffer before writing it.
echo "== poisoned-arena test pass =="
MYST_ARENA_POISON=1 ctest --output-on-failure -j "$(nproc)"

# Docs must not drift from the code: every env var, symbol, and file path
# referenced from README.md / docs/ has to exist in the tree.
echo "== doc-link check =="
cd ..
./scripts/check_docs.sh
