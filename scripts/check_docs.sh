#!/usr/bin/env bash
# Doc-link check: documentation must not drift from the code.  Every env
# var, C++ symbol, and file path referenced from README.md or docs/*.md has
# to still exist in the tree, or this script fails CI.
#
# Deliberately grep-based and conservative: it extracts
#   1. MYST_* / MYSTIQUE_* env-var / macro names,
#   2. backticked `ns::symbol` references (each :: component is checked),
#   3. backticked CamelCase type names,
#   4. backticked or link-target file paths with a known extension,
# and verifies each against the source tree.  False negatives are fine
# (prose is not checked); false positives mean a doc names something that
# no longer exists — which is exactly the rot this guards against.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md docs/*.md)
# Where referenced code/files may legitimately live.
code_roots=(src bench tests examples scripts shared_benchmark CMakeLists.txt .github)

fail=0

say_missing() {
    echo "doc-check FAIL: $1 (referenced in ${2:-docs}, not found in the tree)"
    fail=1
}

# ---- 1. env vars & MYST_ macros -------------------------------------------
for var in $(grep -ohE 'MYST(IQUE)?_[A-Z][A-Z_]*' "${docs[@]}" | sort -u); do
    grep -rqF -- "$var" "${code_roots[@]}" || say_missing "env var / macro '$var'"
done

# ---- 2. backticked ns::symbol references ----------------------------------
# `core::generate_benchmark`, `ReplayPlan::from_json(json, trace)`, ...
for sym in $(grep -ohE '`[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_~][A-Za-z0-9_]*)+' "${docs[@]}" |
                 tr -d '`' | sort -u); do
    # Check every identifier component; namespaces alone (core, et, fw...)
    # are ubiquitous, so a stale leaf is what this actually catches.
    leaf="${sym##*::}"
    leaf="${leaf#\~}"
    grep -rqE -- "\b${leaf}\b" src || say_missing "symbol '$sym'"
done

# ---- 3. backticked CamelCase type names -----------------------------------
for type in $(grep -ohE '`[A-Z][a-z][A-Za-z0-9]*[A-Z][A-Za-z0-9]*`' "${docs[@]}" |
                  tr -d '`' | sort -u); do
    grep -rqE -- "\b${type}\b" "${code_roots[@]}" || say_missing "type '$type'"
done

# ---- 4. file paths ---------------------------------------------------------
# `core/plan_cache.h`, [docs/architecture.md](docs/architecture.md),
# `execution_trace.json` (package files live in shared_benchmark/), ...
for path in $(grep -ohE '[`(][A-Za-z0-9_./-]+\.(h|cpp|md|sh|json|yml|txt)[`)]' \
                   "${docs[@]}" | tr -d '`()' | sort -u); do
    found=0
    for root in . src docs shared_benchmark; do
        [ -e "$root/$path" ] && found=1 && break
    done
    [ "$found" = 1 ] || say_missing "file '$path'"
done

if [ "$fail" != 0 ]; then
    echo "doc-check: documentation references symbols/files that no longer exist"
    exit 1
fi
echo "doc-check OK: all referenced env vars, symbols, and files exist"
