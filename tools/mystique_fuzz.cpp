/// The robustness CLI: fuzz corpus + differential oracle + fault churn.
///
///   mystique-fuzz [--seed N] [--iters N]     # fuzz N cases, all checks
///   mystique-fuzz --case S                   # re-run one case seed (repro)
///   mystique-fuzz --churn [--churn-dir DIR]  # fault churn, every site
///   mystique-fuzz --churn-site SITE          # fault churn, one site
///
/// Default --iters comes from MYST_FUZZ_ITERS (else 25); CI runs the fixed
/// `--seed 7` smoke corpus and one churn pass (see scripts/ci.sh).  Every
/// failure line carries the *case seed* and the *failing check name* (the
/// reproduce hint repeats both); `--case <seed>` reproduces that exact
/// trace, config and checks, regardless of the corpus it came from.
///
/// Exit status: 0 = all checks passed; 1 = mismatches or churn violations;
/// 2 = usage error.
///
/// All behavior lives in testing::run_fuzz_cli (src/testing/fuzz_cli.h) so
/// the unit suite exercises it in-process; this file only binds the real
/// process streams.

#include <cstdio>

#include "testing/fuzz_cli.h"

int
main(int argc, char** argv)
{
    return mystique::testing::run_fuzz_cli(argc, argv, stdout, stderr);
}
