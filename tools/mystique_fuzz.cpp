/// The robustness CLI: fuzz corpus + differential oracle + fault churn.
///
///   mystique-fuzz [--seed N] [--iters N]     # fuzz N cases, all checks
///   mystique-fuzz --case S                   # re-run one case seed (repro)
///   mystique-fuzz --churn [--churn-dir DIR]  # fault churn, every site
///
/// Default --iters comes from MYST_FUZZ_ITERS (else 25); CI runs the fixed
/// `--seed 7` smoke corpus and one churn pass (see scripts/ci.sh).  Every
/// failure line carries the *case seed*; `--case <seed>` reproduces that
/// exact trace, config and checks, regardless of the corpus it came from.
///
/// Exit status: 0 = all checks passed; 1 = mismatches or churn violations.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define MYST_GETPID _getpid
#else
#include <unistd.h>
#define MYST_GETPID getpid
#endif

#include "common/fault_injection.h"
#include "testing/differential.h"
#include "testing/fault_churn.h"
#include "testing/trace_fuzzer.h"

namespace {

uint64_t
parse_u64(const char* flag, const char* text)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "mystique-fuzz: bad value for %s: '%s'\n", flag, text);
        std::exit(2);
    }
    return static_cast<uint64_t>(v);
}

uint64_t
default_iters()
{
    const char* env = std::getenv("MYST_FUZZ_ITERS");
    if (env != nullptr && *env != '\0')
        return parse_u64("MYST_FUZZ_ITERS", env);
    return 25;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace mystique;

    uint64_t base_seed = 7;
    uint64_t iters = default_iters();
    bool have_case = false;
    uint64_t one_case = 0;
    bool churn = false;
    std::string churn_dir;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mystique-fuzz: %s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--seed") == 0)
            base_seed = parse_u64(arg, value());
        else if (std::strcmp(arg, "--iters") == 0)
            iters = parse_u64(arg, value());
        else if (std::strcmp(arg, "--case") == 0) {
            have_case = true;
            one_case = parse_u64(arg, value());
        } else if (std::strcmp(arg, "--churn") == 0)
            churn = true;
        else if (std::strcmp(arg, "--churn-dir") == 0)
            churn_dir = value();
        else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--iters N] [--case S] [--churn] "
                         "[--churn-dir DIR]\n",
                         argv[0]);
            return 2;
        }
    }

    uint64_t faults_fired = 0;
    uint64_t faults_survived = 0;
    uint64_t churn_violations = 0;

    if (churn) {
        if (churn_dir.empty()) {
            churn_dir = (std::filesystem::temp_directory_path() /
                         ("mystique-fuzz-churn-" + std::to_string(MYST_GETPID())))
                            .string();
        }
        std::filesystem::create_directories(churn_dir);
        for (const testing::ChurnReport& r :
             testing::run_churn_all(churn_dir, base_seed)) {
            faults_fired += r.faults_fired;
            faults_survived += r.faults_fired;
            if (!r.ok()) {
                ++churn_violations;
                faults_survived -= r.faults_fired; // this site's faults broke through
                std::printf("FAIL churn site=%s seed=%llu: %s\n", r.site.c_str(),
                            static_cast<unsigned long long>(base_seed),
                            r.detail.empty() ? "contract violated" : r.detail.c_str());
            }
            std::printf("churn site=%-22s ops=%llu fired=%llu leaked=%llu tmp=%llu "
                        "quarantined=%llu heal_builds=%llu %s\n",
                        r.site.c_str(), static_cast<unsigned long long>(r.operations),
                        static_cast<unsigned long long>(r.faults_fired),
                        static_cast<unsigned long long>(r.exceptions),
                        static_cast<unsigned long long>(r.tmp_files),
                        static_cast<unsigned long long>(r.quarantined),
                        static_cast<unsigned long long>(r.heal_builds),
                        r.ok() ? "ok" : "VIOLATED");
        }
        std::filesystem::remove_all(churn_dir);
    }

    testing::DifferentialOracle oracle;
    if (!churn || have_case) {
        std::vector<testing::FuzzedCase> cases;
        if (have_case) {
            cases.push_back(testing::generate_case(one_case));
        } else {
            cases.reserve(iters);
            for (uint64_t i = 0; i < iters; ++i)
                cases.push_back(testing::generate_case(testing::case_seed(base_seed, i)));
        }
        for (const testing::FuzzedCase& c : cases)
            oracle.check_case(c);
        oracle.check_sweep(cases);

        for (const testing::DiffFailure& f : oracle.failures())
            std::printf("FAIL case-seed=%llu check=%s: %s\n    reproduce: %s --case "
                        "%llu\n",
                        static_cast<unsigned long long>(f.seed), f.check.c_str(),
                        f.detail.c_str(), argv[0],
                        static_cast<unsigned long long>(f.seed));
    }

    const testing::DiffCounters& n = oracle.counters();
    const bool ok = oracle.ok() && churn_violations == 0;
    std::printf("mystique-fuzz: traces=%llu checks=%llu mismatches=%llu "
                "faults_fired=%llu faults_survived=%llu status=%s\n",
                static_cast<unsigned long long>(n.traces),
                static_cast<unsigned long long>(n.checks),
                static_cast<unsigned long long>(n.mismatches),
                static_cast<unsigned long long>(faults_fired),
                static_cast<unsigned long long>(faults_survived),
                ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}
