/// Scenario: production network debugging (§7.1).  "We have used it to
/// quickly examine and locate network issues in our production environment,
/// by replaying the communication operators exclusively."
///
/// Traces a distributed run once, then replays only the c10d operators under
/// two network conditions — healthy and a degraded inter-node fabric — to
/// show how comms-only replay isolates the network contribution.
///
/// Usage: network_debugging [world_size]

#include <cstdio>
#include <cstdlib>

#include "core/replayer.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;
    const int world = argc > 1 ? std::atoi(argv[1]) : 4;

    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.world_size = world;
    run_cfg.iterations = 3;
    const wl::RunResult orig = wl::run_original("rm", {}, run_cfg);
    std::printf("traced rm on %d ranks: %.2f ms/iter end-to-end\n", world,
                orig.mean_iter_us / 1e3);

    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }

    core::ReplayConfig cfg;
    cfg.iterations = 3;
    cfg.filter.only_category = dev::OpCategory::kComm; // comms-only replay

    auto comm_time = [&](const comm::Topology& topo) {
        const auto reps = core::Replayer::run_distributed(traces, profs, cfg, topo);
        double total = 0.0;
        for (const auto& k : reps[0].prof.kernels())
            total += k.dur;
        return total;
    };

    comm::Topology healthy; // NVLink intra-node, 200 Gbps NIC inter-node
    healthy.gpus_per_node = 2; // 4 ranks span two nodes → NIC on the path
    comm::Topology degraded = healthy;
    degraded.inter_node_bw_gbps /= 4.0; // a flapping NIC / congested spine

    const double t_healthy = comm_time(healthy);
    const double t_degraded = comm_time(degraded);
    std::printf("comms-only replay, healthy fabric : %8.2f us of collective time/iter\n",
                t_healthy / 3.0);
    std::printf("comms-only replay, degraded fabric: %8.2f us of collective time/iter\n",
                t_degraded / 3.0);
    std::printf("→ a %.1fx collective-time inflation isolated without re-running the\n"
                "  model or its data pipeline (comms-only subtrace replay, §7.1).\n",
                t_degraded / t_healthy);
    return 0;
}
