/// Scenario: large-scale recommendation-model training (§6.6, §7.3).
/// Runs RM across N simulated ranks (model-parallel embedding tables with
/// all_to_all, data-parallel dense layers under DDP), replays all ranks'
/// traces, and then demonstrates scaled-down emulation: reproducing the
/// N-rank iteration time with only two replay ranks.
///
/// Usage: distributed_rm [world_size]

#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "core/replayer.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;
    const int world = argc > 1 ? std::atoi(argv[1]) : 8;

    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.world_size = world;
    run_cfg.iterations = 3;
    const wl::RunResult orig = wl::run_original("rm", {}, run_cfg);
    std::printf("original  %2d ranks: %8.2f ms/iter   (SM %.1f%%, HBM %.1f GB/s)\n", world,
                orig.mean_iter_us / 1e3, orig.rank0().metrics.sm_util_pct,
                orig.rank0().metrics.hbm_gbps);

    // Full-scale replay: one replayer per rank, shared fabric.
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    core::ReplayConfig cfg;
    cfg.iterations = 3;
    const auto reps = core::Replayer::run_distributed(traces, profs, cfg);
    RunningStat rep_time;
    for (const auto& r : reps)
        rep_time.add(r.mean_iter_us);
    std::printf("replay    %2d ranks: %8.2f ms/iter   (coverage %.1f%% ops)\n", world,
                rep_time.mean() / 1e3, 100.0 * reps[0].coverage.count_fraction);

    // Scale-down: two ranks, comm delays computed at the original scale.
    std::vector<const et::ExecutionTrace*> two_traces{traces[0], traces[1]};
    std::vector<const prof::ProfilerTrace*> two_profs{profs[0], profs[1]};
    core::ReplayConfig scaled_cfg = cfg;
    scaled_cfg.emulate_world_size = -1; // derive group sizes from trace metadata
    const auto scaled = core::Replayer::run_distributed(two_traces, two_profs, scaled_cfg);
    std::printf("scale-down 2 ranks: %8.2f ms/iter   (emulating %d-rank comm, §7.3)\n",
                (scaled[0].mean_iter_us + scaled[1].mean_iter_us) / 2.0 / 1e3, world);
    return 0;
}
