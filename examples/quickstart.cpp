/// Quickstart: trace a training workload, generate a benchmark by replaying
/// its execution trace, and compare the two — the paper's core loop.
///
/// Usage: quickstart [workload] [platform]
///   workload: param_linear (default) | resnet | asr | rm
///   platform: A100 (default) | V100 | CPU | NewPlatform

#include <cstdio>
#include <string>

#include "core/replayer.h"
#include "core/similarity.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;
    const std::string workload = argc > 1 ? argv[1] : "param_linear";
    const std::string platform = argc > 2 ? argv[2] : "A100";

    // 1. Run the original workload, collecting the execution trace (ET) and
    //    profiler trace of one iteration (paper §4.1).
    wl::RunConfig run_cfg;
    run_cfg.platform = platform;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.iterations = 5;
    wl::RunResult original = wl::run_original(workload, {}, run_cfg);
    const wl::RankResult& rank0 = original.rank0();

    std::printf("original  : %8.3f ms/iter   (%zu ET nodes, %zu kernels)\n",
                original.mean_iter_us / 1e3, rank0.trace.size(),
                rank0.prof.kernels().size());

    // 2. Replay the trace as a benchmark (§4.6).
    core::ReplayConfig replay_cfg;
    replay_cfg.platform = platform;
    replay_cfg.iterations = 5;
    core::Replayer replayer(rank0.trace, &rank0.prof, replay_cfg);
    core::ReplayResult replay = replayer.run();

    std::printf("replay    : %8.3f ms/iter   (coverage: %.1f%% ops, %.1f%% time)\n",
                replay.mean_iter_us / 1e3, 100.0 * replay.coverage.count_fraction,
                100.0 * replay.coverage.time_fraction);

    // 3. Measure similarity (Figure 3's feedback loop).
    core::SimilarityReport sim = core::compare_runs(
        original.mean_iter_us, rank0.metrics, rank0.prof, replay.mean_iter_us,
        replay.metrics, replay.prof);

    std::printf("e2e error : %6.2f %%\n", 100.0 * sim.e2e_error);
    std::printf("SM util   : %6.1f %% vs %6.1f %%\n", rank0.metrics.sm_util_pct,
                replay.metrics.sm_util_pct);
    std::printf("HBM bw    : %6.1f GB/s vs %6.1f GB/s\n", rank0.metrics.hbm_gbps,
                replay.metrics.hbm_gbps);
    std::printf("GPU power : %6.1f W vs %6.1f W\n", rank0.metrics.power_w,
                replay.metrics.power_w);
    return 0;
}
