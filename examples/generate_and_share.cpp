/// Scenario: share a production workload with an external hardware vendor
/// (§8.4).  The model's custom operators are proprietary, so the trace is
/// obfuscated — annotation names anonymized, IP-sensitive custom subtrees
/// replaced by performance-equivalent public proxy blocks — and then packaged
/// as a self-contained benchmark directory the vendor can build and run.
///
/// Usage: generate_and_share [workload] [output_dir]

#include <cstdio>
#include <string>

#include "common/stats.h"
#include "core/codegen.h"
#include "core/obfuscator.h"
#include "core/replayer.h"
#include "framework/op_registry.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;
    const std::string workload = argc > 1 ? argv[1] : "rm";
    const std::string out_dir = argc > 2 ? argv[2] : "shared_benchmark";

    // 1. Trace the production workload.
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.iterations = 3;
    const wl::RunResult orig = wl::run_original(workload, {}, run_cfg);
    const wl::RankResult& r0 = orig.rank0();
    std::printf("traced %s: %zu nodes, %.2f ms/iter\n", workload.c_str(), r0.trace.size(),
                orig.mean_iter_us / 1e3);

    // 2. Obfuscate: anonymize annotations, proxy the custom ops.
    const et::ExecutionTrace obf = core::obfuscate(r0.trace, r0.prof);
    int proxies = 0;
    for (const auto& n : obf.nodes())
        proxies += n.is_op() && et::resolve_op_id(n) == MYST_OP("obf::proxy") ? 1 : 0;
    std::printf("obfuscated: %zu nodes, %d custom subtrees replaced by obf::proxy\n",
                obf.size(), proxies);

    // 3. Verify the obfuscated trace still reproduces performance.  The
    //    obfuscated replay goes through the process-wide PlanCache so step 4
    //    can reuse the very plan this replay built.
    core::ReplayConfig replay_cfg;
    replay_cfg.iterations = 3;
    core::Replayer original_replay(r0.trace, &r0.prof, replay_cfg);
    core::Replayer obfuscated_replay(
        core::PlanCache::instance().get_or_build(obf, &r0.prof, replay_cfg), replay_cfg);
    const double t_orig = original_replay.run().mean_iter_us;
    const double t_obf = obfuscated_replay.run().mean_iter_us;
    std::printf("replay: original trace %.2f ms vs obfuscated %.2f ms (%.1f%% apart)\n",
                t_orig / 1e3, t_obf / 1e3, 100.0 * relative_error(t_obf, t_orig));

    // 4. Package the shareable benchmark.  The plan comes from the cache
    //    (zero rebuilds after step 3), and the manifest records the plan-key
    //    fingerprints so the vendor can prove the package is untampered.
    const core::PlanCacheStats before = core::PlanCache::instance().stats();
    const core::CodegenResult res =
        core::generate_benchmark(out_dir, obf, r0.prof, replay_cfg);
    const core::PlanCacheStats after = core::PlanCache::instance().stats();
    std::printf("benchmark package written to %s/ (%d files, %llu plan builds)\n",
                res.directory.c_str(), res.files_written,
                static_cast<unsigned long long>(after.misses - before.misses));

    // 5. Prove the package verifies before shipping it.
    const core::PackageVerification v = core::verify_package(out_dir);
    if (!v.ok) {
        for (const auto& e : v.errors)
            std::fprintf(stderr, "package verification failed: %s\n", e.c_str());
        return 1;
    }
    std::printf("package verified: manifest fingerprints match the packaged traces\n");
    return 0;
}
