/// Scenario: early-stage platform evaluation for fleet planning (§7.2).
/// A fleet team has production traces collected on A100 and wants to project
/// each workload's performance on candidate platforms — including an
/// experimental part on which the full software stack (custom in-house
/// libraries) does not run yet.  The replayed benchmarks, configured to skip
/// unsupported operators, provide the projection.
///
/// Usage: platform_screening [workload...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/replayer.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;
    std::vector<std::string> workloads;
    for (int i = 1; i < argc; ++i)
        workloads.emplace_back(argv[i]);
    if (workloads.empty())
        workloads = {"param_linear", "resnet"};

    std::printf("%-14s %12s %12s %12s %14s\n", "Workload", "A100", "V100", "CPU",
                "NewPlatform*");
    std::printf("------------------------------------------------------------------\n");
    for (const auto& w : workloads) {
        // Trace once on the incumbent platform.
        wl::RunConfig run_cfg;
        run_cfg.mode = fw::ExecMode::kShapeOnly;
        run_cfg.iterations = 3;
        const wl::RunResult traced = wl::run_original(w, {}, run_cfg);

        std::printf("%-14s ", w.c_str());
        for (const std::string platform : {"A100", "V100", "CPU", "NewPlatform"}) {
            core::ReplayConfig cfg;
            cfg.platform = platform;
            cfg.iterations = 3;
            if (platform == "NewPlatform") {
                // Bare platform: OS + framework only, no in-house libraries.
                cfg.custom_ops = core::CustomOpRegistry::empty();
            }
            core::Replayer replayer(traced.rank0().trace, &traced.rank0().prof, cfg);
            const auto rep = replayer.run();
            std::printf("%9.2f ms ", rep.mean_iter_us / 1e3);
        }
        std::printf("\n");
    }
    std::printf("\n* projected via replay with unsupported operators skipped (§7.2);\n"
                "  no workload port or dependency install needed on the new part.\n");
    return 0;
}
