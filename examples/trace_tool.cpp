/// A file-oriented CLI over the library — the day-to-day driver a fleet
/// engineer would use against a trace database:
///
///   trace_tool collect  <workload> <out_dir> [platform] [world]
///       runs a workload and writes per-rank ET + profiler JSON files
///   trace_tool stats    <et.json> [prof.json]
///       prints the operator-level summary (§8.2 analyzer)
///   trace_tool validate <et.json>
///       runs the ET builder's structural validation
///   trace_tool replay   <et.json> [prof.json] [platform]
///       replays the trace and prints timing/coverage/metrics
///   trace_tool obfuscate <et.json> <prof.json> <out_et.json>
///       writes the IP-protected trace (§8.4)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/obfuscator.h"
#include "core/replayer.h"
#include "et/trace_db.h"
#include "et/trace_stats.h"
#include "workloads/harness.h"

namespace {

using namespace mystique;

int
cmd_collect(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: trace_tool collect <workload> <out_dir> "
                             "[platform] [world]\n");
        return 2;
    }
    const std::string workload = argv[0];
    const std::string out_dir = argv[1];
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.platform = argc > 2 ? argv[2] : "A100";
    cfg.world_size = argc > 3 ? std::atoi(argv[3]) : 1;
    std::filesystem::create_directories(out_dir);
    const wl::RunResult res = wl::run_original(workload, {}, cfg);
    for (std::size_t rank = 0; rank < res.ranks.size(); ++rank) {
        const std::string stem =
            out_dir + "/" + workload + "_rank" + std::to_string(rank);
        res.ranks[rank].trace.save(stem + ".et.json");
        res.ranks[rank].prof.to_json().dump_file(stem + ".prof.json");
        std::printf("wrote %s.{et,prof}.json  (%zu nodes)\n", stem.c_str(),
                    res.ranks[rank].trace.size());
    }
    std::printf("mean iteration: %.3f ms\n", res.mean_iter_us / 1e3);
    return 0;
}

int
cmd_stats(int argc, char** argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "usage: trace_tool stats <et.json> [prof.json]\n");
        return 2;
    }
    const et::ExecutionTrace trace = et::ExecutionTrace::load(argv[0]);
    prof::ProfilerTrace prof;
    const bool have_prof = argc > 1;
    if (have_prof)
        prof = prof::ProfilerTrace::from_json(Json::parse_file(argv[1]));
    const et::TraceStats stats =
        et::TraceStats::build(trace, have_prof ? &prof : nullptr);
    std::printf("workload=%s platform=%s rank=%d/%d  ops=%lld  kernel=%.2f ms\n",
                trace.meta().workload.c_str(), trace.meta().platform.c_str(),
                trace.meta().rank, trace.meta().world_size,
                static_cast<long long>(stats.total_ops()),
                stats.total_kernel_us() / 1e3);
    std::printf("%-44s %-7s %7s %12s %12s\n", "op", "cat", "count", "in-elems",
                "kernel-us");
    for (const auto& row : stats.ops()) {
        std::printf("%-44s %-7s %7lld %12lld %12.1f\n", row.name.c_str(),
                    dev::to_string(row.category), static_cast<long long>(row.count),
                    static_cast<long long>(row.input_elements), row.kernel_time_us);
    }
    return 0;
}

int
cmd_validate(int argc, char** argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "usage: trace_tool validate <et.json>\n");
        return 2;
    }
    try {
        const et::ExecutionTrace trace = et::ExecutionTrace::load(argv[0]);
        const et::ExecutionTrace built = et::build_trace(trace);
        std::printf("OK: %zu nodes, fingerprint %016llx\n", built.size(),
                    static_cast<unsigned long long>(built.fingerprint()));
        return 0;
    } catch (const MystiqueError& e) {
        std::fprintf(stderr, "INVALID: %s\n", e.what());
        return 1;
    }
}

int
cmd_replay(int argc, char** argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "usage: trace_tool replay <et.json> [prof.json] "
                             "[platform]\n");
        return 2;
    }
    const et::ExecutionTrace trace = et::ExecutionTrace::load(argv[0]);
    prof::ProfilerTrace prof;
    const bool have_prof = argc > 1 && std::strcmp(argv[1], "-") != 0;
    if (have_prof)
        prof = prof::ProfilerTrace::from_json(Json::parse_file(argv[1]));
    core::ReplayConfig cfg;
    if (argc > 2)
        cfg.platform = argv[2];
    core::Replayer replayer(trace, have_prof ? &prof : nullptr, cfg);
    const core::ReplayResult res = replayer.run();
    std::printf("replayed %s on %s: %.3f ms/iter\n", trace.meta().workload.c_str(),
                cfg.platform.c_str(), res.mean_iter_us / 1e3);
    std::printf("coverage: %.1f%% ops, %.1f%% time\n",
                100.0 * res.coverage.count_fraction, 100.0 * res.coverage.time_fraction);
    std::printf("SM %.1f%%  HBM %.1f GB/s  power %.1f W\n", res.metrics.sm_util_pct,
                res.metrics.hbm_gbps, res.metrics.power_w);
    for (const auto& [name, count] : res.coverage.unsupported_by_name)
        std::printf("unsupported: %s x%lld (register via CustomOpRegistry)\n",
                    name.c_str(), static_cast<long long>(count));
    return 0;
}

int
cmd_obfuscate(int argc, char** argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trace_tool obfuscate <et.json> <prof.json> <out.json>\n");
        return 2;
    }
    const et::ExecutionTrace trace = et::ExecutionTrace::load(argv[0]);
    const prof::ProfilerTrace prof =
        prof::ProfilerTrace::from_json(Json::parse_file(argv[1]));
    const et::ExecutionTrace obf = core::obfuscate(trace, prof);
    obf.save(argv[2]);
    std::printf("obfuscated trace written to %s (%zu nodes)\n", argv[2], obf.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_tool <collect|stats|validate|replay|obfuscate> ...\n");
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "collect")
            return cmd_collect(argc - 2, argv + 2);
        if (cmd == "stats")
            return cmd_stats(argc - 2, argv + 2);
        if (cmd == "validate")
            return cmd_validate(argc - 2, argv + 2);
        if (cmd == "replay")
            return cmd_replay(argc - 2, argv + 2);
        if (cmd == "obfuscate")
            return cmd_obfuscate(argc - 2, argv + 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
