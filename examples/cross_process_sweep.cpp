/// Cross-process plan reuse driver for the CI gate in scripts/ci.sh.
///
/// Traces a deterministic multi-workload database (tiny presets, fixed
/// seeds), sweeps it through `ReplayDriver` with `MYST_PLAN_CACHE_DIR`
/// pointed at the directory given on the command line, and prints the sweep
/// outcome plus the plan-cache counters.  Run twice in *separate processes*
/// against one shared directory:
///
///   cross_process_sweep <store-dir> cold   # first process: builds + writes back
///   cross_process_sweep <store-dir> warm   # second process: zero plan builds
///
/// The binary enforces its own phase contract (cold: every group built and
/// persisted; warm: every group a disk hit, zero builds) and exits nonzero
/// on violation; ci.sh additionally diffs the `result:` lines of the two
/// runs, which carry the weighted mean with full precision — cross-process
/// reuse must be bit-identical, not just build-free.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"
#include "workloads/harness.h"

int
main(int argc, char** argv)
{
    using namespace mystique;

    if (argc != 3 ||
        (std::strcmp(argv[2], "cold") != 0 && std::strcmp(argv[2], "warm") != 0)) {
        std::fprintf(stderr, "usage: %s <plan-cache-dir> cold|warm\n", argv[0]);
        return 2;
    }
    const bool cold = std::strcmp(argv[2], "cold") == 0;
    // Through the environment on purpose: this drives the exact knob a fleet
    // deployment would set, not a test-only injection path.
    ::setenv("MYST_PLAN_CACHE_DIR", argv[1], 1);

    // Deterministic database: same traces, fingerprints, and groups in every
    // process (virtual-time simulation under fixed seeds).
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    run_cfg.seed = 7;
    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    const wl::RunResult pl = wl::run_original("param_linear", tiny, run_cfg);
    const wl::RunResult rm = wl::run_original("rm", tiny, run_cfg);
    const wl::RunResult asr = wl::run_original("asr", tiny, run_cfg);

    et::TraceDatabase db;
    for (int i = 0; i < 3; ++i)
        db.add(pl.rank0().trace);
    for (int i = 0; i < 2; ++i)
        db.add(rm.rank0().trace);
    db.add(asr.rank0().trace);
    std::vector<const prof::ProfilerTrace*> profs{&pl.rank0().prof, &pl.rank0().prof,
                                                  &pl.rank0().prof, &rm.rank0().prof,
                                                  &rm.rank0().prof, &asr.rank0().prof};

    core::ReplayConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 2;

    core::ReplayDriver driver(cfg); // process-wide PlanCache → two-tier
    const core::DatabaseReplayResult sweep = driver.replay_groups(db, SIZE_MAX, &profs);
    core::PlanCache::instance().flush_writebacks();
    const core::PlanCacheStats s = core::PlanCache::instance().stats();

    // %.17g: enough digits that two prints are equal iff the doubles are.
    std::printf("result: groups=%zu weighted_mean_iter_us=%.17g population=%.17g\n",
                sweep.groups.size(), sweep.weighted_mean_iter_us,
                sweep.population_covered);
    std::printf("cache: misses=%llu disk_hits=%llu disk_misses=%llu builds=%llu "
                "writebacks=%llu\n",
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.disk_hits),
                static_cast<unsigned long long>(s.disk_misses),
                static_cast<unsigned long long>(s.builds),
                static_cast<unsigned long long>(s.writebacks));

    const auto groups = static_cast<unsigned long long>(sweep.groups.size());
    if (sweep.groups.size() != 3 || sweep.population_covered < 0.999) {
        std::fprintf(stderr, "FAIL: expected 3 fully-covering groups\n");
        return 1;
    }
    if (cold) {
        // First process: nothing on disk yet — every group builds, and every
        // build must be persisted before exit so the next process can reuse it.
        if (s.builds != groups || s.disk_hits != 0 || s.writebacks != groups) {
            std::fprintf(stderr,
                         "FAIL: cold phase expected builds=%llu writebacks=%llu\n",
                         groups, groups);
            return 1;
        }
    } else {
        // Second process: the tentpole claim — zero plan builds, all disk hits.
        if (s.builds != 0 || s.disk_hits != groups || s.writebacks != 0) {
            std::fprintf(stderr,
                         "FAIL: warm phase expected builds=0 disk_hits=%llu "
                         "writebacks=0 (got builds=%llu disk_hits=%llu "
                         "writebacks=%llu)\n",
                         groups, static_cast<unsigned long long>(s.builds),
                         static_cast<unsigned long long>(s.disk_hits),
                         static_cast<unsigned long long>(s.writebacks));
            return 1;
        }
    }
    std::printf("OK: %s phase contract holds\n", cold ? "cold" : "warm");
    return 0;
}
