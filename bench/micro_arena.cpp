/// @file
/// Micro-benchmark and regression gate for the parallel-sweep + storage-arena
/// subsystem.  Two measurements, printed human-readably plus one JSON summary
/// line (`micro_arena_json: {...}`) that scripts/ci.sh surfaces:
///
///   1. alloc churn — a replay-iteration-shaped allocation pattern (a mix of
///      activation/gradient-sized buffers created and dropped per iteration)
///      through arena-backed Storage vs. plain heap-backed Storage.  The
///      arena-warm iteration must beat the heap iteration by a floor: this is
///      the malloc+memset traffic that iteration 2..N of every replay no
///      longer pays.
///
///   2. parallel sweep — ReplayDriver::replay_groups over a ≥8-group
///      database at parallelism 1 vs 4 (both plan-cache warm, so execution —
///      not plan builds — is what's timed).  Results must be bit-identical;
///      wall-clock must improve when the host actually has cores to scale
///      onto (on a single-core host the gate degrades to parity-with-slack,
///      since K threads on one core cannot beat one thread doing the same
///      work).
///
/// Exits nonzero when either gate fails.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"
#include "framework/storage_arena.h"
#include "framework/tensor.h"

namespace {

using namespace mystique;

using bench::now_us;

/// One replay-iteration-shaped churn: create + touch + drop a buffer mix.
void
churn_iteration(const std::shared_ptr<fw::StorageArena>& arena)
{
    // Activation / gradient / index-tensor sizes from the tiny-preset
    // workloads (bytes); what one replayed iteration allocates and frees.
    static const int64_t kSizes[] = {512 * 1024, 256 * 1024, 128 * 1024, 64 * 1024,
                                     64 * 1024,  16 * 1024,  16 * 1024,  4 * 1024,
                                     4 * 1024,   1024};
    for (const int64_t bytes : kSizes) {
        fw::Storage s(bytes, /*materialize_now=*/true, arena);
        // Touch like a kernel writing its output row 0.
        s.data()[0] = std::byte{1};
        s.data()[static_cast<std::size_t>(bytes - 1)] = std::byte{2};
    }
}

} // namespace

int
main()
{
    bench::print_header("micro_arena: storage recycling & parallel sweeps");

    // ---- 1. arena-warm vs heap alloc churn --------------------------------
    constexpr int kChurnIters = 400;
    constexpr double kArenaFloor = 2.0; // arena-warm must be >= 2x cheaper

    auto arena = std::make_shared<fw::StorageArena>();
    churn_iteration(arena); // warm the buckets (iteration 1 pays the misses)

    double heap_us = 1e300, arena_us = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
        const double h0 = now_us();
        for (int i = 0; i < kChurnIters; ++i)
            churn_iteration(nullptr); // heap path: malloc + zero-fill each time
        const double h = (now_us() - h0) / kChurnIters;
        if (h < heap_us)
            heap_us = h;

        const double a0 = now_us();
        for (int i = 0; i < kChurnIters; ++i)
            churn_iteration(arena); // arena path: every acquire is a bucket hit
        const double a = (now_us() - a0) / kChurnIters;
        if (a < arena_us)
            arena_us = a;
    }
    const fw::StorageArenaStats astats = arena->stats();
    const double churn_speedup = arena_us > 0.0 ? heap_us / arena_us : 1e9;

    std::printf("  %-38s %10.2f us/iter\n", "alloc churn, heap-backed", heap_us);
    std::printf("  %-38s %10.2f us/iter   (%.1fx faster)\n", "alloc churn, arena-warm",
                arena_us, churn_speedup);
    std::printf("  arena: hits=%llu misses=%llu cached=%lld B outstanding=%lld B\n",
                static_cast<unsigned long long>(astats.hits),
                static_cast<unsigned long long>(astats.misses),
                static_cast<long long>(astats.bytes_cached),
                static_cast<long long>(astats.bytes_outstanding));

    // ---- 2. parallel database sweep ---------------------------------------
    // 4 workloads x 2 presets = 8 distinct operator mixes = 8 groups.
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    const char* names[] = {"param_linear", "rm", "asr", "resnet"};
    std::vector<wl::RunResult> runs;
    runs.reserve(9);
    et::TraceDatabase db;
    for (const char* name : names) {
        for (const wl::Preset preset : {wl::Preset::kTiny, wl::Preset::kPaper}) {
            wl::WorkloadOptions opts;
            opts.preset = preset;
            runs.push_back(wl::run_original(name, opts, run_cfg));
            db.add(runs.back().rank0().trace);
        }
    }
    // resnet tiny/paper share an op mix (only shapes differ), so add a
    // distributed rm trace — its comm ops make an eighth distinct group.
    {
        wl::RunConfig dist_cfg = run_cfg;
        dist_cfg.world_size = 2;
        wl::WorkloadOptions opts;
        opts.preset = wl::Preset::kTiny;
        runs.push_back(wl::run_original("rm", opts, dist_cfg));
        db.add(runs.back().rank0().trace);
    }
    const std::size_t n_groups = db.analyze().size();

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 4;

    core::PlanCache cache_seq(16), cache_par(16);
    core::ReplayDriver seq(cfg, &cache_seq, 1);
    core::ReplayDriver par(cfg, &cache_par, 4);

    // Warm both plan caches (and both drivers' sessions/arenas), then time
    // the steady-state sweep: execution, not plan builds.
    (void)seq.replay_groups(db);
    (void)par.replay_groups(db);

    const double s0 = now_us();
    const core::DatabaseReplayResult r_seq = seq.replay_groups(db);
    const double seq_us = now_us() - s0;
    const double p0 = now_us();
    const core::DatabaseReplayResult r_par = par.replay_groups(db);
    const double par_us = now_us() - p0;

    const double sweep_speedup = par_us > 0.0 ? seq_us / par_us : 1e9;
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

    std::printf("  %-38s %10.1f us   (%zu groups)\n", "database sweep, parallelism=1",
                seq_us, r_seq.groups.size());
    std::printf("  %-38s %10.1f us   (%.2fx, %u core%s)\n",
                "database sweep, parallelism=4", par_us, sweep_speedup, cores,
                cores == 1 ? "" : "s");
    std::printf("  weighted mean iter: %.2f us (seq) vs %.2f us (par)\n",
                r_seq.weighted_mean_iter_us, r_par.weighted_mean_iter_us);

    Json j = Json::object();
    j.set("churn_heap_us", Json(heap_us));
    j.set("churn_arena_us", Json(arena_us));
    j.set("churn_speedup", Json(churn_speedup));
    j.set("sweep_seq_us", Json(seq_us));
    j.set("sweep_par_us", Json(par_us));
    j.set("sweep_speedup", Json(sweep_speedup));
    j.set("groups", Json(static_cast<int64_t>(r_seq.groups.size())));
    j.set("cores", Json(static_cast<int64_t>(cores)));
    j.set("arena_hits", Json(static_cast<int64_t>(r_par.arena.hits)));
    std::printf("micro_arena_json: %s\n", j.dump().c_str());

    // ---- gates ------------------------------------------------------------
    // MYST_ARENA_POISON=1 memsets every recycled block (read-before-write
    // sentinel), which erases the recycling advantage by design — keep the
    // correctness gates but skip the churn perf floor under poison.
    const char* poison_env = std::getenv("MYST_ARENA_POISON");
    const bool poisoned = poison_env != nullptr && poison_env[0] == '1';
    bool ok = true;
    if (poisoned) {
        std::printf("  (MYST_ARENA_POISON=1: churn perf floor skipped)\n");
    } else if (churn_speedup < kArenaFloor) {
        std::printf("FAIL: arena-warm churn (%.2f us) not >=%.1fx cheaper than heap "
                    "(%.2f us)\n",
                    arena_us, kArenaFloor, heap_us);
        ok = false;
    }
    if (astats.misses > 16 || astats.hits < static_cast<uint64_t>(kChurnIters)) {
        std::printf("FAIL: warm churn was not served from the buckets "
                    "(hits=%llu misses=%llu)\n",
                    static_cast<unsigned long long>(astats.hits),
                    static_cast<unsigned long long>(astats.misses));
        ok = false;
    }
    if (n_groups < 8) {
        std::printf("FAIL: database produced %zu groups, need >= 8\n", n_groups);
        ok = false;
    }
    // Bit-identity between the sequential and parallel sweeps.
    if (r_seq.weighted_mean_iter_us != r_par.weighted_mean_iter_us ||
        r_seq.groups.size() != r_par.groups.size()) {
        std::printf("FAIL: parallel sweep diverged from sequential "
                    "(%.6f vs %.6f us over %zu vs %zu groups)\n",
                    r_seq.weighted_mean_iter_us, r_par.weighted_mean_iter_us,
                    r_seq.groups.size(), r_par.groups.size());
        ok = false;
    } else {
        for (std::size_t i = 0; i < r_seq.groups.size(); ++i) {
            if (r_seq.groups[i].result.mean_iter_us != r_par.groups[i].result.mean_iter_us) {
                std::printf("FAIL: group %zu diverged under parallelism\n", i);
                ok = false;
            }
        }
    }
    // Wall-clock: demand a real speedup only when the host can provide one.
    // K threads on a single core cannot beat one thread doing identical work;
    // there we only require near-parity (scheduling overhead bounded).
    if (cores >= 2) {
        if (sweep_speedup < 1.15) {
            std::printf("FAIL: parallelism=4 sweep (%.1f us) not >=1.15x faster than "
                        "sequential (%.1f us) on %u cores\n",
                        par_us, seq_us, cores);
            ok = false;
        }
    } else if (par_us > seq_us * 1.35) {
        std::printf("FAIL: parallelism=4 sweep (%.1f us) more than 1.35x slower than "
                    "sequential (%.1f us) on a single core\n",
                    par_us, seq_us);
        ok = false;
    }
    if (r_par.arena.hits == 0) {
        std::printf("FAIL: warm parallel sweep recycled no buffers\n");
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("OK: arena-warm iterations skip heap traffic (>=%.1fx) and parallel "
                "sweeps match sequential results%s\n",
                kArenaFloor,
                cores >= 2 ? " with real wall-clock speedup" : " (single core: parity)");
    return 0;
}
