/// @file
/// Micro-benchmark and regression gate for plan-aware benchmark generation
/// plus the pooled distributed replay path.
///
/// Measurements, printed human-readably plus one JSON summary line
/// (`micro_codegen_json: {...}`) that scripts/ci.sh surfaces:
///
///   1. cold codegen — generate_benchmark on an empty PlanCache (pays one
///      plan build on top of serialization and file I/O);
///   2. warm codegen — the same package again: the plan is a cache hit, so
///      the package is re-emitted with ZERO plan builds (the
///      generate-after-replay flow of §8.4);
///   3. verify — verify_package re-deriving every fingerprint;
///   4. distributed replay, first vs repeat — run_distributed on the shared
///      ThreadPool: the repeat call reuses pool threads and per-rank
///      sessions (reset, arenas kept) instead of spawning and cold-starting
///      per rank.
///
/// Exits nonzero unless warm codegen performs zero plan builds and is no
/// slower than cold codegen (with slack for I/O jitter), a fresh package
/// verifies clean, and the repeated distributed replay is bit-identical to
/// the first.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/codegen.h"
#include "core/plan_cache.h"

namespace {

using namespace mystique;
using bench::now_us;

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    bench::print_header("micro_codegen: plan-aware packaging & pooled distributed replay");

    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    const wl::RunResult rm = wl::run_original("rm", {}, run_cfg);
    const auto& r0 = rm.rank0();

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 2;

    const std::string dir =
        (fs::temp_directory_path() / "mystique_micro_codegen").string();
    fs::remove_all(dir);

    // ---- 1. cold codegen (one plan build) --------------------------------
    core::PlanCache cache(16);
    const double c0 = now_us();
    const core::CodegenResult cold = core::generate_benchmark(dir, r0.trace, r0.prof,
                                                              cfg, &cache);
    const double cold_us = now_us() - c0;
    const core::PlanCacheStats cold_stats = cache.stats();

    // ---- 2. warm codegen (zero plan builds) ------------------------------
    constexpr int kWarmReps = 5;
    double warm_us = 1e300;
    for (int i = 0; i < kWarmReps; ++i) {
        const double w0 = now_us();
        (void)core::generate_benchmark(dir, r0.trace, r0.prof, cfg, &cache);
        const double dt = now_us() - w0;
        if (dt < warm_us)
            warm_us = dt;
    }
    const core::PlanCacheStats warm_stats = cache.stats();

    // ---- 3. verification --------------------------------------------------
    const double v0 = now_us();
    const core::PackageVerification verification = core::verify_package(dir);
    const double verify_us = now_us() - v0;

    // ---- 4. distributed replay on the shared pool ------------------------
    wl::RunConfig dist_cfg = run_cfg;
    dist_cfg.world_size = 2;
    const wl::RunResult dist = wl::run_original("param_linear", {}, dist_cfg);
    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : dist.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    const double d0 = now_us();
    const auto first = core::Replayer::run_distributed(traces, profs, cfg);
    const double dist_first_us = now_us() - d0;
    const double d1 = now_us();
    const auto repeat = core::Replayer::run_distributed(traces, profs, cfg);
    const double dist_repeat_us = now_us() - d1;

    std::printf("  %-38s %12.1f us   (%llu plan build)\n", "cold codegen (rm package)",
                cold_us, static_cast<unsigned long long>(cold_stats.misses));
    std::printf("  %-38s %12.1f us   (0 plan builds, best of %d)\n",
                "warm codegen (plan cache hit)", warm_us, kWarmReps);
    std::printf("  %-38s %12.1f us   (%s)\n", "verify_package", verify_us,
                verification.ok ? "ok" : "FAILED");
    std::printf("  %-38s %12.1f us\n", "run_distributed, first (2 ranks)",
                dist_first_us);
    std::printf("  %-38s %12.1f us   (pool + sessions reused)\n",
                "run_distributed, repeat", dist_repeat_us);

    Json j = Json::object();
    j.set("cold_codegen_us", Json(cold_us));
    j.set("warm_codegen_us", Json(warm_us));
    j.set("verify_us", Json(verify_us));
    j.set("warm_plan_builds",
          Json(static_cast<int64_t>(warm_stats.misses - cold_stats.misses)));
    j.set("dist_first_us", Json(dist_first_us));
    j.set("dist_repeat_us", Json(dist_repeat_us));
    j.set("files_written", Json(static_cast<int64_t>(cold.files_written)));
    std::printf("micro_codegen_json: %s\n", j.dump().c_str());

    // ---- gates ------------------------------------------------------------
    bool ok = true;
    if (cold_stats.misses != 1) {
        std::printf("FAIL: cold codegen should pay exactly one plan build (got %llu)\n",
                    static_cast<unsigned long long>(cold_stats.misses));
        ok = false;
    }
    if (warm_stats.misses != cold_stats.misses) {
        std::printf("FAIL: warm codegen rebuilt the plan (%llu -> %llu misses)\n",
                    static_cast<unsigned long long>(cold_stats.misses),
                    static_cast<unsigned long long>(warm_stats.misses));
        ok = false;
    }
    if (warm_stats.hits < kWarmReps) {
        std::printf("FAIL: warm codegen did not hit the plan cache (%llu hits)\n",
                    static_cast<unsigned long long>(warm_stats.hits));
        ok = false;
    }
    // Warm must not be slower than cold: both pay serialization + I/O, cold
    // additionally pays the plan build.  1.25x slack absorbs filesystem
    // jitter on loaded CI hosts.
    if (warm_us > cold_us * 1.25) {
        std::printf("FAIL: warm codegen (%.1f us) slower than cold (%.1f us)\n", warm_us,
                    cold_us);
        ok = false;
    }
    if (!verification.ok) {
        for (const auto& e : verification.errors)
            std::printf("FAIL: fresh package does not verify: %s\n", e.c_str());
        ok = false;
    }
    // The pooled repeat call must reproduce the first bit-for-bit.
    if (repeat.size() != first.size()) {
        std::printf("FAIL: repeated distributed replay changed world size\n");
        ok = false;
    } else {
        for (std::size_t r = 0; r < first.size(); ++r) {
            if (repeat[r].mean_iter_us != first[r].mean_iter_us ||
                repeat[r].iter_us != first[r].iter_us) {
                std::printf("FAIL: pooled repeat diverged from first call at rank %zu\n",
                            r);
                ok = false;
            }
        }
    }

    fs::remove_all(dir);
    if (!ok)
        return 1;
    std::printf("OK: warm codegen emits packages with zero plan builds, fresh packages "
                "verify, and pooled distributed replays are repeatable\n");
    return 0;
}
