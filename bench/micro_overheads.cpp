/// Microbenchmarks of the Mystique machinery itself (google-benchmark):
/// the costs behind the paper's "lightweight collection / negligible
/// overhead / initialization-time reconstruction" claims (§3.2, §4.3).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/replayer.h"
#include "et/trace.h"
#include "framework/math.h"
#include "jit/ir.h"
#include "jit/schema.h"
#include "workloads/harness.h"

namespace {

using namespace mystique;

wl::RunResult&
cached_param_linear()
{
    static wl::RunResult result = [] {
        wl::RunConfig cfg;
        cfg.mode = fw::ExecMode::kShapeOnly;
        cfg.warmup_iterations = 0;
        cfg.iterations = 1;
        return wl::run_original("param_linear", {}, cfg);
    }();
    return result;
}

/// Cost of parsing one operator schema string (§4.3.1 reconstruction step 1).
void
BM_SchemaParse(benchmark::State& state)
{
    const std::string schema =
        "aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, "
        "Scalar alpha=1) -> Tensor";
    for (auto _ : state) {
        auto fs = jit::parse_schema(schema);
        benchmark::DoNotOptimize(fs);
    }
}
BENCHMARK(BM_SchemaParse);

/// Cost of building + parsing the IR text for one operator (steps 2-3).
void
BM_IrBuildParse(benchmark::State& state)
{
    const jit::FunctionSchema fs = jit::parse_schema(
        "aten::addmm(Tensor self, Tensor mat1, Tensor mat2, *, Scalar beta=1, "
        "Scalar alpha=1) -> Tensor");
    std::vector<jit::Constant> consts(5);
    consts[0].kind = consts[1].kind = consts[2].kind = jit::Constant::Kind::kTensorInput;
    consts[3].kind = jit::Constant::Kind::kFloat;
    consts[4].kind = jit::Constant::Kind::kFloat;
    for (auto _ : state) {
        auto graph = jit::parse_ir(jit::build_ir_text(fs, consts));
        benchmark::DoNotOptimize(graph);
    }
}
BENCHMARK(BM_IrBuildParse);

/// ET JSON serialization cost per trace (storage-path cost, §3.2 claim 4).
void
BM_TraceSerialize(benchmark::State& state)
{
    const et::ExecutionTrace& trace = cached_param_linear().rank0().trace;
    for (auto _ : state) {
        auto text = trace.to_json().dump();
        benchmark::DoNotOptimize(text);
    }
    state.counters["nodes"] = static_cast<double>(trace.size());
}
BENCHMARK(BM_TraceSerialize);

/// ET JSON parse cost per trace.
void
BM_TraceDeserialize(benchmark::State& state)
{
    const std::string text = cached_param_linear().rank0().trace.to_json().dump();
    for (auto _ : state) {
        auto trace = et::ExecutionTrace::from_json(Json::parse(text));
        benchmark::DoNotOptimize(trace);
    }
}
BENCHMARK(BM_TraceDeserialize);

/// Full replay-plan construction (selection + reconstruction + stream
/// assignment) for a real trace — the replay initialization phase (§4.3.4).
void
BM_ReplayPlanBuild(benchmark::State& state)
{
    const auto& artifacts = cached_param_linear().rank0();
    for (auto _ : state) {
        core::Replayer replayer(artifacts.trace, &artifacts.prof, core::ReplayConfig{});
        benchmark::DoNotOptimize(replayer.selection().total_selected());
    }
}
BENCHMARK(BM_ReplayPlanBuild);

/// One replayed iteration of the tiny workload (steady-state replay cost).
void
BM_ReplayIteration(benchmark::State& state)
{
    const auto& artifacts = cached_param_linear().rank0();
    core::ReplayConfig cfg;
    cfg.warmup_iterations = 0;
    cfg.iterations = 1;
    cfg.collect_profiler = false;
    for (auto _ : state) {
        core::Replayer replayer(artifacts.trace, &artifacts.prof, cfg);
        auto result = replayer.run();
        benchmark::DoNotOptimize(result.mean_iter_us);
    }
}
BENCHMARK(BM_ReplayIteration);

/// Tracing overhead: one traced vs untraced original iteration.
void
BM_OriginalIterationTraced(benchmark::State& state)
{
    wl::RunConfig cfg;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 0;
    cfg.iterations = 1;
    cfg.collect_traces = state.range(0) != 0;
    for (auto _ : state) {
        auto result = wl::run_original("param_linear", {}, cfg);
        benchmark::DoNotOptimize(result.mean_iter_us);
    }
    state.SetLabel(state.range(0) != 0 ? "traced" : "untraced");
}
BENCHMARK(BM_OriginalIterationTraced)->Arg(0)->Arg(1);

/// The seed's scalar gemm loop, kept as the baseline for the blocked kernel.
void
gemm_naive(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n)
{
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j)
            c[i * n + j] = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
            const float av = a[i * k + p];
            const float* brow = b + p * n;
            float* crow = c + i * n;
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/// Naive-vs-blocked GEMM: records the k-panel tiling speedup (math::gemm is
/// what every mm/addmm/bmm numeric-mode kernel dispatches through).
void
BM_GemmNaive(benchmark::State& state)
{
    const int64_t d = state.range(0);
    std::vector<float> a(static_cast<std::size_t>(d * d), 1.5f);
    std::vector<float> b(static_cast<std::size_t>(d * d), 0.5f);
    std::vector<float> c(static_cast<std::size_t>(d * d));
    for (auto _ : state) {
        gemm_naive(a.data(), b.data(), c.data(), d, d, d);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["flops"] = benchmark::Counter(
        static_cast<double>(2 * d * d * d), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmBlocked(benchmark::State& state)
{
    const int64_t d = state.range(0);
    std::vector<float> a(static_cast<std::size_t>(d * d), 1.5f);
    std::vector<float> b(static_cast<std::size_t>(d * d), 0.5f);
    std::vector<float> c(static_cast<std::size_t>(d * d));
    for (auto _ : state) {
        fw::math::gemm(a.data(), b.data(), c.data(), d, d, d);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["flops"] = benchmark::Counter(
        static_cast<double>(2 * d * d * d), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

/// Batched dispatch through the blocked kernel (aten::bmm's numeric path).
void
BM_BmmBlocked(benchmark::State& state)
{
    const int64_t batch = 8, d = 64;
    std::vector<float> a(static_cast<std::size_t>(batch * d * d), 1.5f);
    std::vector<float> b(static_cast<std::size_t>(batch * d * d), 0.5f);
    std::vector<float> c(static_cast<std::size_t>(batch * d * d));
    for (auto _ : state) {
        fw::math::bmm(a.data(), b.data(), c.data(), batch, d, d, d);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_BmmBlocked);

/// Collective cost-model evaluation (hot path of comm reconstruction).
void
BM_CollectiveCostModel(benchmark::State& state)
{
    comm::NetworkModel model;
    double bytes = 1e6;
    for (auto _ : state) {
        const double t =
            model.collective_us(comm::CollectiveKind::kAllReduce, bytes, 64, true);
        benchmark::DoNotOptimize(t);
        bytes = bytes < 1e9 ? bytes * 1.001 : 1e6;
    }
}
BENCHMARK(BM_CollectiveCostModel);

/// Kernel roofline evaluation (hot path of every launch).
void
BM_KernelCostModel(benchmark::State& state)
{
    const dev::PlatformSpec spec = dev::a100();
    dev::KernelDesc d;
    d.kind = dev::KernelKind::kGemm;
    d.flops = 1e9;
    d.bytes = 1e7;
    d.working_set_bytes = 1e7;
    d.parallelism = 1e6;
    for (auto _ : state) {
        const auto t = dev::kernel_time(d, spec);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_KernelCostModel);

} // namespace

BENCHMARK_MAIN();
