/// Reproduces Table 5: scalability evaluation of RM training on 8 nodes with
/// 64 GPUs total (NVLink intra-node, 200 Gbps NIC per GPU inter-node).
///
/// Paper reference: exec time 102.5→113.1 ms, SM util 49.6→43.6 %,
/// HBM 418.5→364.3 GB/s, power 228.1→204.8 W (original→replay).

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Table 5: Scalability evaluation, RM on 8 nodes x 8 GPUs (64 ranks)");
    wl::RunConfig run_cfg = bench::bench_run_config("A100", 64);
    run_cfg.iterations = 2;
    const auto orig = wl::run_original("rm", {}, run_cfg);

    std::vector<const et::ExecutionTrace*> traces;
    std::vector<const prof::ProfilerTrace*> profs;
    for (const auto& r : orig.ranks) {
        traces.push_back(&r.trace);
        profs.push_back(&r.prof);
    }
    core::ReplayConfig replay_cfg = bench::bench_replay_config();
    replay_cfg.iterations = 2;
    const auto reps = core::Replayer::run_distributed(traces, profs, replay_cfg,
                                                      run_cfg.topology);

    double rep_time = 0.0, rep_sm = 0.0, rep_hbm = 0.0, rep_p = 0.0;
    for (const auto& r : reps) {
        rep_time += r.mean_iter_us;
        rep_sm += r.metrics.sm_util_pct;
        rep_hbm += r.metrics.hbm_gbps;
        rep_p += r.metrics.power_w;
    }
    const double n = static_cast<double>(reps.size());
    double orig_sm = 0.0, orig_hbm = 0.0, orig_p = 0.0;
    for (const auto& r : orig.ranks) {
        orig_sm += r.metrics.sm_util_pct;
        orig_hbm += r.metrics.hbm_gbps;
        orig_p += r.metrics.power_w;
    }
    const double m = static_cast<double>(orig.ranks.size());

    std::printf("%-26s %12s %12s\n", "Metric", "Original", "Replay");
    std::printf("----------------------------------------------------\n");
    std::printf("%-26s %12.1f %12.1f\n", "Execution time (ms)",
                orig.mean_iter_us / 1e3, rep_time / n / 1e3);
    std::printf("%-26s %12.1f %12.1f\n", "SM utilization (%)", orig_sm / m, rep_sm / n);
    std::printf("%-26s %12.1f %12.1f\n", "HBM bandwidth (GB/s)", orig_hbm / m, rep_hbm / n);
    std::printf("%-26s %12.1f %12.1f\n", "GPU power (W)", orig_p / m, rep_p / n);
    std::printf("\nPaper: 102.5→113.1 ms, 49.6→43.6 %%, 418.5→364.3 GB/s, 228.1→204.8 W\n"
                "(replay slightly off due to communication-operator reconstruction).\n");
    bench::print_footnote();
    return 0;
}
