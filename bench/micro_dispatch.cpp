/// @file
/// Micro-benchmark for the interned-OpId dispatch pipeline.
///
/// Replays a 100k-op synthetic trace through three operator-resolution
/// strategies and reports ns/op for each:
///
///   1. legacy   — std::map<std::string, OpDef> lookup, the seed's registry
///                 storage (re-hashes/compares the name on every invocation);
///   2. string   — the current string overload: intern-table hash once per
///                 call, then a flat-vector index;
///   3. opid     — pre-resolved OpId, one bounds check + vector index per op,
///                 which is what Session::call(OpId), the autograd tape and
///                 Replayer::build_plan's compiled plan pay.
///
/// Exits nonzero if OpId dispatch is not strictly faster than both
/// string-keyed paths, so the refactor's win stays visible (and enforced)
/// in the bench trajectory.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "framework/op_registry.h"

namespace {

using mystique::OpId;
using mystique::fw::OpDef;
using mystique::fw::OpRegistry;

constexpr std::size_t kTraceOps = 100000;
constexpr int kRepetitions = 7;

/// Best-of-N wall time for one resolution loop, in ns/op.  The accumulated
/// extra_cpu_us sum is returned through @p sink so the loop cannot be
/// optimized away.
template <typename LoopFn>
double
best_ns_per_op(LoopFn&& loop, double& sink)
{
    double best_ns = 1e300;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        sink += loop();
        const auto end = std::chrono::steady_clock::now();
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count()) /
            static_cast<double>(kTraceOps);
        if (ns < best_ns)
            best_ns = ns;
    }
    return best_ns;
}

} // namespace

int
main()
{
    mystique::fw::ensure_ops_registered();
    OpRegistry& reg = OpRegistry::instance();

    // Synthetic trace: registered op names round-robin, mimicking the op mix
    // a replay plan walks every iteration.
    const std::vector<std::string> names = reg.names();
    std::vector<const std::string*> trace_names;
    std::vector<OpId> trace_ids;
    trace_names.reserve(kTraceOps);
    trace_ids.reserve(kTraceOps);
    for (std::size_t i = 0; i < kTraceOps; ++i) {
        const std::string& name = names[i % names.size()];
        trace_names.push_back(&name);
        trace_ids.push_back(reg.at(name).id); // resolve once, as build_plan does
    }

    // The seed's storage scheme, reconstructed for comparison.
    std::map<std::string, const OpDef*> legacy;
    for (const auto& name : names)
        legacy.emplace(name, &reg.at(name));

    double sink = 0.0;
    const double legacy_ns = best_ns_per_op(
        [&] {
            double acc = 0.0;
            for (const auto* name : trace_names)
                acc += legacy.find(*name)->second->extra_cpu_us;
            return acc;
        },
        sink);
    const double string_ns = best_ns_per_op(
        [&] {
            double acc = 0.0;
            for (const auto* name : trace_names)
                acc += reg.at(*name).extra_cpu_us;
            return acc;
        },
        sink);
    const double opid_ns = best_ns_per_op(
        [&] {
            double acc = 0.0;
            for (const OpId id : trace_ids)
                acc += reg.at(id).extra_cpu_us;
            return acc;
        },
        sink);

    std::printf("micro_dispatch: %zu-op synthetic trace, %zu distinct ops, best of %d\n",
                kTraceOps, names.size(), kRepetitions);
    std::printf("  %-28s %8.2f ns/op\n", "legacy map<string,OpDef>", legacy_ns);
    std::printf("  %-28s %8.2f ns/op\n", "string intern + flat index", string_ns);
    std::printf("  %-28s %8.2f ns/op\n", "OpId flat index", opid_ns);
    std::printf("  speedup: %.1fx vs legacy, %.1fx vs string (sink %.1f)\n",
                legacy_ns / opid_ns, string_ns / opid_ns, sink);

    // Require a 20% margin, not bare inequality, so scheduler noise on a
    // loaded CI runner cannot flip the gate (the real gap is ~7-11x).
    constexpr double kMargin = 0.8;
    if (opid_ns >= kMargin * legacy_ns || opid_ns >= kMargin * string_ns) {
        std::printf("FAIL: OpId dispatch is not strictly faster than string dispatch\n");
        return 1;
    }
    std::printf("OK: OpId dispatch strictly faster than string-keyed dispatch\n");
    return 0;
}
