/// Reproduces Figure 2: the fraction of operator types (ATen, Comms, Fused,
/// Custom) in a production model running on 8 GPUs, in terms of operator
/// count, CPU time, and *exposed* GPU time.
///
/// Paper shape: ATen dominates all three metrics; Fused is second in count
/// but has the shortest GPU time; Custom and Comms are few in count but
/// carry long GPU time.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 2: Operator breakdown of RM on 8 GPUs");
    const auto orig = wl::run_original("rm", {}, bench::bench_run_config("A100", 8));
    const auto rows = orig.rank0().prof.category_breakdown();

    double total_count = 0.0, total_cpu = 0.0, total_exposed = 0.0;
    for (const auto& [cat, row] : rows) {
        if (cat == dev::OpCategory::kOther)
            continue;
        total_count += static_cast<double>(row.count);
        total_cpu += row.cpu_time_us;
        total_exposed += row.exposed_gpu_time_us;
    }

    std::printf("%-8s %12s %12s %20s\n", "Type", "Count", "CPU time", "GPU time (exposed)");
    std::printf("--------------------------------------------------------\n");
    for (const auto cat : {dev::OpCategory::kATen, dev::OpCategory::kComm,
                           dev::OpCategory::kFused, dev::OpCategory::kCustom}) {
        const auto it = rows.find(cat);
        const prof::CategoryBreakdown row =
            it == rows.end() ? prof::CategoryBreakdown{} : it->second;
        std::printf("%-8s %11.1f%% %11.1f%% %19.1f%%\n", dev::to_string(cat),
                    total_count > 0 ? 100.0 * static_cast<double>(row.count) / total_count : 0.0,
                    total_cpu > 0 ? 100.0 * row.cpu_time_us / total_cpu : 0.0,
                    total_exposed > 0 ? 100.0 * row.exposed_gpu_time_us / total_exposed
                                      : 0.0);
    }
    std::printf("\nAbsolute per-rank totals: count=%.0f  cpu=%.1f ms  exposed gpu=%.1f ms\n",
                total_count, total_cpu / 1e3, total_exposed / 1e3);
    std::printf("Expected shape: ATen takes the lion's share of all three metrics\n"
                "(paper Figure 2); comms mostly hidden under compute.\n");
    bench::print_footnote();
    return 0;
}
