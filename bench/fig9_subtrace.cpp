/// Reproduces Figure 9: subtrace replay (§7.1).  The RM workload labels its
/// interaction + top-MLP segment with record_function("## forward:z ##");
/// the replayer selectively replays only that subtree, repeatedly, and the
/// segment's original performance is reproduced.
///
/// Paper reference: original segment 9.4 ms; two replays 9.8 / 9.7 ms.

#include <set>

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 9: Subtrace replay of '## forward:z ##' in RM");
    const auto orig = wl::run_original("rm", {}, bench::bench_run_config());

    // Original segment time on the *device timeline*: the span from the
    // wrapper's first CPU issue to the last kernel launched by its subtree
    // (CPU issue is asynchronous; the GPU work defines the segment).
    const et::ExecutionTrace& trace = orig.rank0().trace;
    const et::Node* root = trace.find_by_name("## forward:z ##");
    std::set<int64_t> subtree;
    if (root != nullptr) {
        subtree.insert(root->id);
        for (const auto& n : trace.nodes()) {
            if (n.parent >= 0 && subtree.count(n.parent) != 0)
                subtree.insert(n.id);
        }
    }
    // Busy time of the segment's kernels (union of their intervals): on the
    // FIFO stream these run back-to-back, so this is the segment's execution
    // time independent of how long it queued behind the sparse path.
    std::vector<sim::Interval> seg_ivs;
    for (const auto& k : orig.rank0().prof.kernels())
        if (subtree.count(k.correlation) != 0)
            seg_ivs.push_back({k.ts, k.ts + k.dur});
    const double seg_cpu = sim::union_length(seg_ivs);

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.filter.subtrace_root = "## forward:z ##";
    cfg.iterations = 2; // "repeated replay traces" in the figure
    core::Replayer replayer(orig.rank0().trace, &orig.rank0().prof, cfg);
    const auto rep = replayer.run();

    std::printf("original segment (gpu busy):  %8.2f ms\n", seg_cpu / 1e3);
    for (std::size_t i = 0; i < rep.iter_us.size(); ++i)
        std::printf("subtrace replay iteration %zu: %8.2f ms\n", i + 1,
                    rep.iter_us[i] / 1e3);
    std::printf("selected %lld of the trace's ops (full-model replay selects %lld)\n",
                static_cast<long long>(replayer.selection().total_selected()),
                static_cast<long long>(
                    core::Replayer(orig.rank0().trace, &orig.rank0().prof,
                                   bench::bench_replay_config())
                        .selection()
                        .total_selected()));
    std::printf("\nPaper: 9.4 ms original segment vs 9.8/9.7 ms replays; replay\n"
                "executes only the target subtrace.\n");
    bench::print_footnote();
    return 0;
}
