/// Reproduces Figure 4: runtime traces of PARAM linear and its generated
/// benchmark for a single training iteration — two CPU threads (main +
/// autograd) and the GPU stream, with closely matching end-to-end times.
///
/// Exports both chrome traces (viewable in chrome://tracing / Perfetto,
/// like the paper's screenshots) and prints the timeline summary.
///
/// Paper reference: original 14.9 ms vs replay 14.2 ms.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 4: PARAM linear original vs replayed timeline");
    const bench::Pair p = bench::run_pair("param_linear", bench::bench_run_config(),
                                          bench::bench_replay_config());

    p.original.rank0().prof.save_chrome_trace("fig4_original_trace.json");
    p.replay.prof.save_chrome_trace("fig4_replay_trace.json");

    auto describe = [](const char* label, const prof::ProfilerTrace& t, double e2e_us) {
        int tid1 = 0, tid2 = 0, wrappers = 0;
        for (const auto& e : t.cpu_ops()) {
            if (e.is_wrapper)
                ++wrappers;
            else if (e.tid == fw::kMainThread)
                ++tid1;
            else
                ++tid2;
        }
        double gpu_busy = 0.0;
        for (const auto& k : t.kernels())
            gpu_busy += k.dur;
        std::printf("%-9s  e2e %7.2f ms | cpu ops: %3d fwd-thread, %3d autograd-thread, "
                    "%3d wrappers | gpu busy %7.2f ms\n",
                    label, e2e_us / 1e3, tid1, tid2, wrappers, gpu_busy / 1e3);
    };
    describe("original", p.original.rank0().prof, p.original.mean_iter_us);
    describe("replay", p.replay.prof, p.replay.mean_iter_us);

    std::printf("\nReplay collapses wrapper frames and replays their underlying\n"
                "operators (\"Replay targets\"), so the replay trace has zero\n"
                "wrapper events while op and kernel counts match the original.\n");
    std::printf("Chrome traces written: fig4_original_trace.json, fig4_replay_trace.json\n");
    std::printf("Paper: original 14.9 ms vs replay 14.2 ms (operator bars interleave\n"
                "identically; height differences are the skipped wrappers).\n");
    bench::print_footnote();
    return 0;
}
