/// Reproduces Figure 7: cross-platform validation.  Traces are collected on
/// the A100 *only*; the generated benchmarks then run unchanged on CPU, V100
/// and A100, and their times are compared against the original workload run
/// natively on each platform (normalized per platform).
///
/// ASR and RM run only on the GPU platforms, as in the paper.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 7: Normalized execution time across platforms "
                        "(replay / original, trace from A100)");
    std::printf("%-14s %10s %10s %10s\n", "Model", "CPU", "V100", "A100");
    std::printf("----------------------------------------------------------\n");
    for (const std::string w : {"param_linear", "resnet", "asr", "rm"}) {
        // Trace once on A100.
        const auto traced = wl::run_original(w, {}, bench::bench_run_config("A100"));
        const bool gpu_only = w == "asr" || w == "rm";
        std::printf("%-14s ", bench::pretty_name(w));
        for (const std::string platform : {"CPU", "V100", "A100"}) {
            if (platform == "CPU" && gpu_only) {
                std::printf("%10s ", "n/a");
                continue;
            }
            // Original natively on the target platform...
            const auto orig =
                wl::run_original(w, {}, bench::bench_run_config(platform));
            // ...vs the A100-collected trace replayed there (no regeneration).
            core::ReplayConfig rc = bench::bench_replay_config(platform);
            core::Replayer replayer(traced.rank0().trace, &traced.rank0().prof, rc);
            const auto rep = replayer.run();
            const double calibrated =
                orig.mean_iter_us - rep.coverage.unsupported_exposed_us;
            std::printf("%10.3f ", rep.mean_iter_us / calibrated);
        }
        std::printf("\n");
    }
    std::printf("\nExpected shape: every ratio ~1.0 on every platform — the benchmark\n"
                "is portable without regeneration (paper Figure 7).\n");
    bench::print_footnote();
    return 0;
}
