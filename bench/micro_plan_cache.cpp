/// @file
/// Micro-benchmark and regression gate for the shared-replay-plan subsystem.
///
/// Three measurements, printed human-readably plus one JSON summary line
/// (`micro_plan_cache_json: {...}`) that scripts/ci.sh surfaces:
///
///   1. cold   — full ReplayPlan::build (selection + coverage +
///               reconstruction + stream assignment) on a traced workload;
///   2. hit    — PlanCache::get_or_build served from cache for an
///               *equivalent* trace (equal fingerprint, distinct object),
///               i.e. what the N-th replay of a trace-database group pays;
///   3. sweep  — ReplayDriver::replay_groups over a multi-group database,
///               first sweep (plans built) vs second sweep (all cache hits).
///
/// Exits nonzero unless a cache hit is ≥10x cheaper than a cold build and
/// the batched sweep produces correctly weighted, cache-served results —
/// the tentpole's perf claim stays enforced in the bench trajectory.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"

namespace {

using namespace mystique;
using bench::now_us;

} // namespace

int
main()
{
    bench::print_header("micro_plan_cache: shared replay plans & batched sweeps");

    // Trace a mixed workload set once (tiny presets: build cost, not device
    // time, is what this bench measures).
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    const wl::RunResult pl = wl::run_original("param_linear", tiny, run_cfg);
    const wl::RunResult rm = wl::run_original("rm", tiny, run_cfg);
    const wl::RunResult asr = wl::run_original("asr", tiny, run_cfg);

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 2;

    // ---- 1. cold build ---------------------------------------------------
    constexpr int kColdReps = 7;
    double cold_us = 1e300;
    for (int i = 0; i < kColdReps; ++i) {
        const double t0 = now_us();
        auto plan = core::ReplayPlan::build(rm.rank0().trace, &rm.rank0().prof, cfg);
        const double dt = now_us() - t0;
        if (plan->ops().empty())
            return 1; // plan must not be empty (and keeps the build observable)
        if (dt < cold_us)
            cold_us = dt;
    }

    // ---- 2. cache hit on an equivalent trace -----------------------------
    core::PlanCache cache(16);
    (void)cache.get_or_build(rm.rank0().trace, &rm.rank0().prof, cfg); // prime (miss)
    const et::ExecutionTrace equivalent = rm.rank0().trace; // distinct object
    (void)cache.get_or_build(equivalent, &rm.rank0().prof, cfg); // warm its fp cache
    constexpr int kHitReps = 2000;
    const double h0 = now_us();
    for (int i = 0; i < kHitReps; ++i) {
        auto plan = cache.get_or_build(equivalent, &rm.rank0().prof, cfg);
        if (plan == nullptr)
            return 1;
    }
    const double hit_us = (now_us() - h0) / kHitReps;
    const core::PlanCacheStats hit_stats = cache.stats();

    // ---- 3. batched database sweep ---------------------------------------
    et::TraceDatabase db;
    for (int i = 0; i < 3; ++i)
        db.add(pl.rank0().trace);
    for (int i = 0; i < 2; ++i)
        db.add(rm.rank0().trace);
    db.add(asr.rank0().trace);
    std::vector<const prof::ProfilerTrace*> profs{&pl.rank0().prof, &pl.rank0().prof,
                                                  &pl.rank0().prof, &rm.rank0().prof,
                                                  &rm.rank0().prof, &asr.rank0().prof};

    core::PlanCache sweep_cache(16);
    core::ReplayDriver driver(cfg, &sweep_cache);
    const double s0 = now_us();
    const core::DatabaseReplayResult sweep1 = driver.replay_groups(db, SIZE_MAX, &profs);
    const double sweep1_us = now_us() - s0;
    const double s1 = now_us();
    const core::DatabaseReplayResult sweep2 = driver.replay_groups(db, SIZE_MAX, &profs);
    const double sweep2_us = now_us() - s1;

    const double speedup = hit_us > 0.0 ? cold_us / hit_us : 1e9;
    std::printf("  %-34s %12.1f us\n", "cold plan build (rm, best of 7)", cold_us);
    std::printf("  %-34s %12.3f us   (%.0fx faster)\n", "plan-cache hit (equivalent trace)",
                hit_us, speedup);
    std::printf("  %-34s %12.1f us   (%zu groups, plans built)\n", "database sweep, cold",
                sweep1_us, sweep1.groups.size());
    std::printf("  %-34s %12.1f us   (all plans cache-served)\n", "database sweep, warm",
                sweep2_us);
    std::printf("  weighted mean iter: %.2f us over %.0f%% of the population\n",
                sweep1.weighted_mean_iter_us, 100.0 * sweep1.population_covered);

    Json j = Json::object();
    j.set("cold_build_us", Json(cold_us));
    j.set("cache_hit_us", Json(hit_us));
    j.set("hit_speedup", Json(speedup));
    j.set("sweep_cold_us", Json(sweep1_us));
    j.set("sweep_warm_us", Json(sweep2_us));
    j.set("groups", Json(static_cast<int64_t>(sweep1.groups.size())));
    j.set("weighted_mean_iter_us", Json(sweep1.weighted_mean_iter_us));
    j.set("population_covered", Json(sweep1.population_covered));
    std::printf("micro_plan_cache_json: %s\n", j.dump().c_str());

    // ---- gates ------------------------------------------------------------
    bool ok = true;
    if (hit_us * 10.0 >= cold_us) {
        std::printf("FAIL: cache hit (%.3f us) is not >=10x cheaper than cold build "
                    "(%.1f us)\n",
                    hit_us, cold_us);
        ok = false;
    }
    if (hit_stats.hits < kHitReps || hit_stats.misses != 1) {
        std::printf("FAIL: hit/miss accounting off (hits=%llu misses=%llu)\n",
                    static_cast<unsigned long long>(hit_stats.hits),
                    static_cast<unsigned long long>(hit_stats.misses));
        ok = false;
    }
    if (sweep1.groups.size() != 3 || sweep1.population_covered < 0.999 ||
        sweep1.weighted_mean_iter_us <= 0.0) {
        std::printf("FAIL: sweep did not cover the database's 3 groups\n");
        ok = false;
    } else if (sweep1.groups[0].group.population_weight <
                   sweep1.groups[1].group.population_weight ||
               sweep1.groups[1].group.population_weight <
                   sweep1.groups[2].group.population_weight) {
        // Weight order: param_linear 3/6, rm 2/6, asr 1/6.
        std::printf("FAIL: groups not ordered by population weight\n");
        ok = false;
    }
    if (sweep2.cache.misses != sweep1.cache.misses ||
        sweep2.cache.hits < sweep1.cache.hits + sweep1.groups.size()) {
        std::printf("FAIL: second sweep was not served from the plan cache\n");
        ok = false;
    }
    if (sweep2.weighted_mean_iter_us != sweep1.weighted_mean_iter_us) {
        std::printf("FAIL: cache-served sweep diverged from cold sweep\n");
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("OK: plan-cache hits skip the build phase (>=10x) and batched sweeps "
                "replay through the cache\n");
    return 0;
}
