/// Reproduces Figure 6: per-kernel microarchitectural similarity between the
/// original ResNet and its generated benchmark — IPC, L1 hit rate, L2 hit
/// rate and SM throughput for the top-10 kernels by runtime, plus the
/// overall ratio across all kernels (normalized to the original).
///
/// Paper reference: top-10 kernels cover 50.3% of execution time; overall
/// deviation within 2%.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 6: Per-kernel microarch similarity, ResNet (replay/original)");
    const bench::Pair p =
        bench::run_pair("resnet", bench::bench_run_config(), bench::bench_replay_config());
    const core::SimilarityReport sim = core::compare_runs(
        p.original.mean_iter_us, p.original.rank0().metrics, p.original.rank0().prof,
        p.replay.mean_iter_us, p.replay.metrics, p.replay.prof, /*top_k=*/10);

    std::printf("%-46s %6s | %6s %6s %6s %6s\n", "Kernel", "share", "IPC", "L1", "L2",
                "SMthr");
    std::printf("--------------------------------------------------------------------------------\n");
    for (const auto& k : sim.top_kernels) {
        std::printf("%-46s %5.1f%% | %6.3f %6.3f %6.3f %6.3f\n", k.name.c_str(),
                    100.0 * k.time_share, k.ipc_ratio, k.l1_ratio, k.l2_ratio,
                    k.sm_throughput_ratio);
    }
    std::printf("%-46s %5.1f%% | %6.3f %6.3f %6.3f %6.3f\n", "overall",
                100.0 * sim.overall.time_share, sim.overall.ipc_ratio,
                sim.overall.l1_ratio, sim.overall.l2_ratio,
                sim.overall.sm_throughput_ratio);
    std::printf("\nTop-10 kernels cover %.1f%% of original device time (paper: 50.3%%).\n",
                100.0 * sim.top_k_time_share);
    std::printf("Expected shape: all ratios ~1.0 (paper: overall within 2%%).\n");
    bench::print_footnote();
    return 0;
}
