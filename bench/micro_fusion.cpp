/// @file
/// Micro-benchmark and regression gate for the plan-level graph optimizer
/// (core/plan_optimizer.h): pointwise-chain fusion must make replay
/// *measurably faster* while staying *bit-identical* to verbatim replay.
///
/// Per workload (rm "## forward:z ##", resnet "## forward ##"):
///
///   1. equivalence — optimized and verbatim replay produce exactly equal
///      per-iteration virtual times, identical kernel timelines
///      (name/stream/ts/dur/flops/bytes; correlation ids legitimately
///      differ: a fused chain is one CPU op), and byte-identical coverage
///      JSON (coverage counts original ops, not fused groups);
///   2. speed — the *marginal* wall-clock cost per replay iteration
///      (slope between two iteration counts, excluding fixed setup) drops
///      ≥1.2x under fusion.
///
/// Plus the amortization contract: a database sweep through a disk-backed
/// PlanCache optimizes on the cold build only — a fresh cache over the same
/// store performs zero builds AND zero re-optimizations.
///
/// Prints one JSON summary line (`micro_fusion_json: {...}`) that
/// scripts/ci.sh surfaces; exits nonzero on any gate failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"

namespace {

using namespace mystique;
using bench::now_us;

struct WorkloadCase {
    const char* workload;
    const char* subtrace;
};

constexpr WorkloadCase kCases[] = {
    {"rm", "## forward:z ##"},
    {"resnet", "## forward ##"},
};

core::ReplayConfig
case_config(const WorkloadCase& c, int opt_level)
{
    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.filter.subtrace_root = c.subtrace;
    cfg.opt_level = opt_level; // explicit: immune to the MYST_OPT_LEVEL env
    return cfg;
}

constexpr int kLowIters = 8;
constexpr int kHighIters = 56;

/// One timed replay at @p iterations.
double
timed_run_us(const std::shared_ptr<const core::ReplayPlan>& plan,
             core::ReplayConfig cfg, int iterations)
{
    cfg.collect_profiler = false; // measure dispatch, not event recording
    cfg.iterations = iterations;
    const double t0 = now_us();
    core::Replayer(plan, cfg).run();
    return now_us() - t0;
}

struct SlopePair {
    double verb;
    double opt;
};

/// Marginal wall-clock cost of one replay iteration for the verbatim and
/// optimized plans: slope between two iteration counts, so fixed per-run
/// costs (TensorManager analyze, IR instantiation, session setup) cancel
/// out.  All four raw timings are sampled *interleaved* across kReps rounds
/// and each keeps its per-rep minimum — raw-timing noise is one-sided
/// (contention only ever adds time), so best-of per timing is the faithful
/// estimator, and the slope of the best-case timings is the quiet-machine
/// slope.  (Taking min or median of per-rep *slopes* is not robust: a slope
/// is a difference, so a preempted low-iteration run yields a spuriously
/// small sample.)  Two back-to-back measurement phases made the gate flaky
/// under drifting background load; interleaving keeps both plans under the
/// same conditions.
SlopePair
paired_iter_slopes(const std::shared_ptr<const core::ReplayPlan>& plan_verb,
                   const core::ReplayConfig& cfg_verb,
                   const std::shared_ptr<const core::ReplayPlan>& plan_opt,
                   const core::ReplayConfig& cfg_opt)
{
    constexpr int kReps = 13;
    double verb_low = 1e300, verb_high = 1e300;
    double opt_low = 1e300, opt_high = 1e300;
    for (int r = 0; r < kReps; ++r) {
        verb_low = std::min(verb_low, timed_run_us(plan_verb, cfg_verb, kLowIters));
        verb_high = std::min(verb_high, timed_run_us(plan_verb, cfg_verb, kHighIters));
        opt_low = std::min(opt_low, timed_run_us(plan_opt, cfg_opt, kLowIters));
        opt_high = std::min(opt_high, timed_run_us(plan_opt, cfg_opt, kHighIters));
    }
    return {(verb_high - verb_low) / (kHighIters - kLowIters),
            (opt_high - opt_low) / (kHighIters - kLowIters)};
}

bool
same_kernel_timeline(const prof::ProfilerTrace& a, const prof::ProfilerTrace& b)
{
    if (a.kernels().size() != b.kernels().size())
        return false;
    for (std::size_t i = 0; i < a.kernels().size(); ++i) {
        const prof::KernelEvent& x = a.kernels()[i];
        const prof::KernelEvent& y = b.kernels()[i];
        if (x.name != y.name || x.stream != y.stream || x.ts != y.ts ||
            x.dur != y.dur || x.flops != y.flops || x.bytes != y.bytes ||
            x.kind != y.kind || x.category != y.category)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    bench::print_header("micro_fusion: optimized vs verbatim replay plans");

    bool ok = true;
    Json j = Json::object();

    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;

    et::ExecutionTrace rm_trace; // kept for the sweep gate below

    for (const WorkloadCase& c : kCases) {
        const wl::RunResult traced = wl::run_original(c.workload, tiny, run_cfg);
        const et::ExecutionTrace& trace = traced.rank0().trace;
        const prof::ProfilerTrace& prof = traced.rank0().prof;
        if (std::string(c.workload) == "rm")
            rm_trace = trace;

        const core::ReplayConfig cfg_opt = case_config(c, 1);
        const core::ReplayConfig cfg_verb = case_config(c, 0);
        const auto plan_opt = core::ReplayPlan::build(trace, &prof, cfg_opt);
        const auto plan_verb = core::ReplayPlan::build(trace, &prof, cfg_verb);

        const core::OptimizerStats& os = plan_opt->optimizer_stats();
        std::printf("  %-8s chains=%lld ops_fused=%lld eliminated=%lld "
                    "simplified=%lld optimize_us=%.1f\n",
                    c.workload, static_cast<long long>(os.chains_formed),
                    static_cast<long long>(os.ops_fused),
                    static_cast<long long>(os.ops_eliminated),
                    static_cast<long long>(os.ops_simplified), os.optimize_us);
        if (os.chains_formed < 1 || os.ops_fused < 2) {
            std::printf("FAIL: %s: optimizer formed no chains on a workload "
                        "built to have them\n",
                        c.workload);
            ok = false;
        }
        if (!plan_verb->fused_groups().empty()) {
            std::printf("FAIL: %s: opt_level=0 plan carries fused groups\n",
                        c.workload);
            ok = false;
        }

        // ---- 1. equivalence ------------------------------------------------
        const core::ReplayResult ro = core::Replayer(plan_opt, cfg_opt).run();
        const core::ReplayResult rv = core::Replayer(plan_verb, cfg_verb).run();
        if (ro.iter_us != rv.iter_us) {
            std::printf("FAIL: %s: optimized iteration times diverge from "
                        "verbatim (%.6f vs %.6f us mean)\n",
                        c.workload, ro.mean_iter_us, rv.mean_iter_us);
            ok = false;
        }
        if (!same_kernel_timeline(ro.prof, rv.prof)) {
            std::printf("FAIL: %s: optimized kernel timeline diverges from "
                        "verbatim (%zu vs %zu kernels)\n",
                        c.workload, ro.prof.kernels().size(),
                        rv.prof.kernels().size());
            ok = false;
        }
        const std::string cov_opt = plan_opt->to_json().at("coverage").dump();
        const std::string cov_verb = plan_verb->to_json().at("coverage").dump();
        if (cov_opt != cov_verb) {
            std::printf("FAIL: %s: coverage reports differ between optimized "
                        "and verbatim plans\n",
                        c.workload);
            ok = false;
        }

        // ---- 2. speed ------------------------------------------------------
        // Up to kAttempts measurement windows: the estimator is robust
        // within a window, but sustained host-side contention (VM steal
        // time) can pollute a whole window; a later quiet window proves the
        // speedup is real.  Only exhausting every window is a failure.
        constexpr int kAttempts = 3;
        SlopePair slopes{0.0, 0.0};
        double speedup = 0.0;
        for (int attempt = 0; attempt < kAttempts; ++attempt) {
            slopes = paired_iter_slopes(plan_verb, cfg_verb, plan_opt, cfg_opt);
            speedup = slopes.opt > 0.0 ? slopes.verb / slopes.opt : 1e9;
            if (speedup >= 1.2)
                break;
            std::printf("  %-8s attempt %d: %.2fx < 1.2x — remeasuring "
                        "(loaded window?)\n",
                        c.workload, attempt + 1, speedup);
        }
        const double slope_verb = slopes.verb;
        const double slope_opt = slopes.opt;
        std::printf("  %-8s iter: verbatim %.2f us, optimized %.2f us "
                    "(%.2fx), virtual %.2f us\n",
                    c.workload, slope_verb, slope_opt, speedup, ro.mean_iter_us);
        if (speedup < 1.2) {
            std::printf("FAIL: %s: fused replay is only %.2fx faster than "
                        "verbatim (need >=1.2x)\n",
                        c.workload, speedup);
            ok = false;
        }

        Json cj = Json::object();
        cj.set("chains_formed", Json(os.chains_formed));
        cj.set("ops_fused", Json(os.ops_fused));
        cj.set("verbatim_iter_us", Json(slope_verb));
        cj.set("optimized_iter_us", Json(slope_opt));
        cj.set("speedup", Json(speedup));
        j.set(c.workload, std::move(cj));
    }

    // ---- 3. amortization: optimize once, never re-optimize -----------------
    const std::string dir =
        (fs::temp_directory_path() / ("myst_micro_fusion_" + std::to_string(::getpid())))
            .string();
    struct DirGuard {
        std::string d;
        ~DirGuard()
        {
            std::error_code ec;
            fs::remove_all(d, ec);
        }
    } guard{dir};

    et::TraceDatabase db;
    db.add(rm_trace);
    core::ReplayConfig sweep_cfg = case_config(kCases[0], 1);

    core::PlanCache cold_cache(16);
    cold_cache.set_store_dir(dir);
    core::ReplayDriver cold_driver(sweep_cfg, &cold_cache);
    cold_driver.replay_groups(db);
    cold_cache.flush_writebacks();
    const core::PlanCacheStats cold = cold_cache.stats();
    if (cold.builds != 1 || cold.opt_chains_formed < 1) {
        std::printf("FAIL: cold sweep accounting off (builds=%llu chains=%llu)\n",
                    static_cast<unsigned long long>(cold.builds),
                    static_cast<unsigned long long>(cold.opt_chains_formed));
        ok = false;
    }

    core::PlanCache warm_cache(16); // fresh cache over the same store ≈ restart
    warm_cache.set_store_dir(dir);
    core::ReplayDriver warm_driver(sweep_cfg, &warm_cache);
    const core::DatabaseReplayResult warm_sweep = warm_driver.replay_groups(db);
    const core::PlanCacheStats warm = warm_sweep.cache;
    std::printf("  warm sweep: builds=%llu disk_hits=%llu re-optimizations=%llu\n",
                static_cast<unsigned long long>(warm.builds),
                static_cast<unsigned long long>(warm.disk_hits),
                static_cast<unsigned long long>(warm.opt_chains_formed));
    if (warm.builds != 0 || warm.disk_hits != 1) {
        std::printf("FAIL: warm two-tier sweep performed %llu builds (want 0, "
                    "served from disk)\n",
                    static_cast<unsigned long long>(warm.builds));
        ok = false;
    }
    if (warm.opt_chains_formed != 0 || warm.opt_ops_fused != 0 ||
        warm.opt_time_us != 0.0) {
        std::printf("FAIL: warm sweep re-optimized (chains=%llu fused=%llu "
                    "time=%.1f us; want all zero)\n",
                    static_cast<unsigned long long>(warm.opt_chains_formed),
                    static_cast<unsigned long long>(warm.opt_ops_fused),
                    warm.opt_time_us);
        ok = false;
    }

    std::printf("micro_fusion_json: %s\n", j.dump().c_str());
    if (!ok)
        return 1;
    std::printf("OK: fused replay is bit-identical to verbatim, >=1.2x faster "
                "per iteration, and optimized exactly once across the two-tier "
                "sweep\n");
    return 0;
}
