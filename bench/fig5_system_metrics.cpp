/// Reproduces Figure 5: SM utilization, HBM bandwidth and GPU power for each
/// model and its replayed benchmark (single A100).

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 5: System-level metrics, original vs replay (A100)");
    std::printf("%-14s | %9s %9s | %9s %9s | %8s %8s\n", "Model", "SM orig", "SM repl",
                "HBM orig", "HBM repl", "P orig", "P repl");
    std::printf("%-14s | %9s %9s | %9s %9s | %8s %8s\n", "", "(%)", "(%)", "(GB/s)",
                "(GB/s)", "(W)", "(W)");
    std::printf("----------------------------------------------------------------------\n");
    for (const std::string w : {"param_linear", "resnet", "asr", "rm"}) {
        const bench::Pair p =
            bench::run_pair(w, bench::bench_run_config(), bench::bench_replay_config());
        const auto& o = p.original.rank0().metrics;
        const auto& r = p.replay.metrics;
        std::printf("%-14s | %9.1f %9.1f | %9.1f %9.1f | %8.1f %8.1f\n",
                    bench::pretty_name(w), o.sm_util_pct, r.sm_util_pct, o.hbm_gbps,
                    r.hbm_gbps, o.power_w, r.power_w);
    }
    std::printf("\nExpected shape: per-model metrics differ widely across models but\n"
                "match closely between original and replay (paper Figure 5).\n");
    bench::print_footnote();
    return 0;
}
