/// Reproduces Table 3: operator coverage rate (count and execution time)
/// of the replayer across the four evaluated workloads.
///
/// Paper reference: PARAM linear 100/100, ResNet 100/100, ASR 99.6/75.7,
/// RM 96.8/90.9 (percent).

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Table 3: Ops coverage rate across evaluated workloads");
    std::printf("%-14s %12s %18s\n", "Model", "Count", "Execution time");
    std::printf("----------------------------------------------------------------\n");
    for (const std::string w : {"param_linear", "resnet", "asr", "rm"}) {
        const auto orig = wl::run_original(w, {}, bench::bench_run_config());
        core::Replayer replayer(orig.rank0().trace, &orig.rank0().prof,
                                bench::bench_replay_config());
        const auto& cov = replayer.coverage_stats();
        std::printf("%-14s %11.1f%% %17.1f%%\n", bench::pretty_name(w),
                    100.0 * cov.count_fraction, 100.0 * cov.time_fraction);
        for (const auto& [name, count] : cov.unsupported_by_name)
            std::printf("    unsupported: %-42s x%lld\n", name.c_str(),
                        static_cast<long long>(count));
    }
    std::printf("\nPaper:         PARAM 100/100, ResNet 100/100, ASR 99.6/75.7, RM 96.8/90.9\n");
    bench::print_footnote();
    return 0;
}
