/// @file
/// Micro-benchmark and regression gate for the multi-stream async executor
/// (core/replayer.cpp): on a trace whose kernels span two compute streams,
/// dependency-tracked replay must make the *virtual* iteration measurably
/// faster than the serial op-by-op walk while staying identical per stream.
///
/// The workload is hand-built to be dispatch-bound: two independent
/// `aten::mm` chains, interleaved in program order, with a profiler trace
/// that pins chain A to stream 7 and chain B to stream 9.  The dependency
/// graph has no cross-chain edges, so the async executor runs one lane per
/// stream and the per-lane host clocks overlap the dispatch cost the serial
/// walk pays sequentially.  Gates:
///
///   1. structure — the plan's dep graph covers every op and carries (at
///      least) the two compute streams;
///   2. stream identity — serial and async replays launch the same kernels
///      on the same streams in the same per-stream order, and async replay
///      is bit-identical to itself across runs (timestamps included);
///   3. speed — async mean virtual iteration time beats serial by >=1.2x
///      (virtual time is deterministic: no remeasure loops needed);
///   4. amortization — a two-tier PlanCache sweep under the async config
///      builds on the cold pass only; a fresh cache over the same store
///      serves the plan (dependency graph included) from disk with zero
///      rebuilds and replays it to the same weighted mean.
///
/// Prints one JSON summary line (`micro_async_json: {...}`) that
/// scripts/ci.sh surfaces; exits nonzero on any gate failure.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/plan_optimizer.h"
#include "core/replay_driver.h"
#include "et/trace_db.h"

namespace {

using namespace mystique;

constexpr int kChainLen = 24;
constexpr int kStreamA = dev::kComputeStream;
constexpr int kStreamB = 9;

et::TensorMeta
f32_meta(int64_t uid, std::vector<int64_t> shape)
{
    et::TensorMeta m;
    m.tensor_id = uid;
    m.storage_id = uid + 10000;
    m.numel = fw::shape_numel(shape);
    m.shape = std::move(shape);
    return m;
}

et::Node
mm_node(int64_t id, et::TensorMeta a, et::TensorMeta b, et::TensorMeta out)
{
    et::Node n;
    n.id = id;
    n.name = "aten::mm";
    n.op_schema = "aten::mm(Tensor self, Tensor mat2) -> Tensor";
    n.inputs.push_back(et::Argument::from_tensor(std::move(a)));
    n.inputs.push_back(et::Argument::from_tensor(std::move(b)));
    n.outputs.push_back(et::Argument::from_tensor(std::move(out)));
    return n;
}

/// Two independent mm chains interleaved in program order.  Chain c reads
/// its own previous output (RAW within the chain, nothing across chains);
/// uids are disjoint between chains so the dep graph keeps them parallel.
et::ExecutionTrace
two_chain_trace()
{
    const std::vector<int64_t> shape{32, 32};
    et::ExecutionTrace t;
    int64_t id = 0;
    for (int step = 0; step < kChainLen; ++step) {
        for (int chain = 0; chain < 2; ++chain) {
            const int64_t base = chain * 1000;
            const int64_t acc_in = base + step * 2 + 1;  // previous output
            const int64_t weight = base + step * 2 + 2;  // fresh right operand
            const int64_t acc_out = base + (step + 1) * 2 + 1;
            t.add_node(mm_node(id++, f32_meta(acc_in, shape), f32_meta(weight, shape),
                               f32_meta(acc_out, shape)));
        }
    }
    return t;
}

/// Profiler trace steering the plan's stream assignment (§4.5): one kernel
/// per node, correlation = node id, chain A on stream 7, chain B on 9.
prof::ProfilerTrace
two_stream_prof(const et::ExecutionTrace& t)
{
    prof::ProfilerTrace p;
    double ts = 0.0;
    for (const et::Node& n : t.nodes()) {
        prof::KernelEvent ev;
        ev.name = "sim_mm";
        ev.stream = n.id % 2 == 0 ? kStreamA : kStreamB;
        ev.ts = ts;
        ev.dur = 1.0;
        ev.correlation = n.id;
        ts += 1.0;
        p.add_kernel(std::move(ev));
    }
    return p;
}

core::ReplayConfig
async_config(int async_level)
{
    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.opt_level = 1;           // explicit: immune to the MYST_OPT_LEVEL env
    cfg.async_level = async_level; // explicit: immune to the MYST_ASYNC env
    return cfg;
}

std::map<int, std::vector<std::string>>
names_by_stream(const prof::ProfilerTrace& p)
{
    std::map<int, std::vector<std::string>> by_stream;
    for (const prof::KernelEvent& ev : p.kernels())
        by_stream[ev.stream].push_back(ev.name);
    return by_stream;
}

bool
same_kernel_timeline(const prof::ProfilerTrace& a, const prof::ProfilerTrace& b)
{
    if (a.kernels().size() != b.kernels().size())
        return false;
    for (std::size_t i = 0; i < a.kernels().size(); ++i) {
        const prof::KernelEvent& x = a.kernels()[i];
        const prof::KernelEvent& y = b.kernels()[i];
        if (x.name != y.name || x.stream != y.stream || x.ts != y.ts ||
            x.dur != y.dur || x.flops != y.flops || x.bytes != y.bytes ||
            x.kind != y.kind || x.category != y.category)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    bench::print_header("micro_async: multi-stream async vs serial replay");

    bool ok = true;
    Json j = Json::object();

    const et::ExecutionTrace trace = two_chain_trace();
    const prof::ProfilerTrace prof = two_stream_prof(trace);

    const core::ReplayConfig cfg_serial = async_config(0);
    const core::ReplayConfig cfg_async = async_config(1);
    const auto plan = core::ReplayPlan::build(trace, &prof, cfg_async);

    // ---- 1. structure ------------------------------------------------------
    const core::DepGraph& g = plan->dep_graph();
    std::map<int, int> unit_streams;
    for (const core::DepUnit& u : g.units)
        ++unit_streams[u.stream];
    std::printf("  plan: units=%zu streams=%zu\n", g.units.size(),
                unit_streams.size());
    if (g.units.size() != static_cast<std::size_t>(2 * kChainLen)) {
        std::printf("FAIL: dep graph covers %zu units (want %d)\n", g.units.size(),
                    2 * kChainLen);
        ok = false;
    }
    if (unit_streams.count(kStreamA) == 0 || unit_streams.count(kStreamB) == 0) {
        std::printf("FAIL: plan lost the profiler's stream assignment "
                    "(%zu streams)\n",
                    unit_streams.size());
        ok = false;
    }

    // ---- 2. stream identity ------------------------------------------------
    const core::ReplayResult rs = core::Replayer(trace, &prof, cfg_serial).run();
    const core::ReplayResult ra = core::Replayer(trace, &prof, cfg_async).run();
    if (names_by_stream(rs.prof) != names_by_stream(ra.prof) ||
        rs.prof.kernels().size() != ra.prof.kernels().size()) {
        std::printf("FAIL: async replay diverges from serial per stream "
                    "(%zu vs %zu kernels)\n",
                    rs.prof.kernels().size(), ra.prof.kernels().size());
        ok = false;
    }
    const core::ReplayResult ra2 = core::Replayer(trace, &prof, cfg_async).run();
    if (ra.iter_us != ra2.iter_us || !same_kernel_timeline(ra.prof, ra2.prof)) {
        std::printf("FAIL: async replay is not deterministic across runs\n");
        ok = false;
    }

    // ---- 3. speed (virtual, deterministic) ---------------------------------
    const double speedup =
        ra.mean_iter_us > 0.0 ? rs.mean_iter_us / ra.mean_iter_us : 1e9;
    std::printf("  iter: serial %.2f us, async %.2f us (%.2fx virtual)\n",
                rs.mean_iter_us, ra.mean_iter_us, speedup);
    if (speedup < 1.2) {
        std::printf("FAIL: async replay is only %.2fx faster than serial on a "
                    "two-stream dispatch-bound trace (need >=1.2x)\n",
                    speedup);
        ok = false;
    }

    // ---- 4. amortization: build once, restore the graph from disk ----------
    const std::string dir =
        (fs::temp_directory_path() / ("myst_micro_async_" + std::to_string(::getpid())))
            .string();
    struct DirGuard {
        std::string d;
        ~DirGuard()
        {
            std::error_code ec;
            fs::remove_all(d, ec);
        }
    } guard{dir};

    et::TraceDatabase db;
    db.add(trace);
    const std::vector<const prof::ProfilerTrace*> profs{&prof};

    core::PlanCache cold_cache(16);
    cold_cache.set_store_dir(dir);
    core::ReplayDriver cold_driver(cfg_async, &cold_cache);
    const core::DatabaseReplayResult cold_sweep = cold_driver.replay_groups(
        db, std::numeric_limits<std::size_t>::max(), &profs);
    cold_cache.flush_writebacks();
    const core::PlanCacheStats cold = cold_cache.stats();
    if (cold.builds != 1 || cold_sweep.groups_ok != 1) {
        std::printf("FAIL: cold sweep accounting off (builds=%llu ok=%zu)\n",
                    static_cast<unsigned long long>(cold.builds),
                    cold_sweep.groups_ok);
        ok = false;
    }

    core::PlanCache warm_cache(16); // fresh cache over the same store ≈ restart
    warm_cache.set_store_dir(dir);
    core::ReplayDriver warm_driver(cfg_async, &warm_cache);
    const core::DatabaseReplayResult warm_sweep = warm_driver.replay_groups(
        db, std::numeric_limits<std::size_t>::max(), &profs);
    const core::PlanCacheStats warm = warm_sweep.cache;
    std::printf("  warm sweep: builds=%llu disk_hits=%llu\n",
                static_cast<unsigned long long>(warm.builds),
                static_cast<unsigned long long>(warm.disk_hits));
    if (warm.builds != 0 || warm.disk_hits != 1) {
        std::printf("FAIL: warm two-tier sweep performed %llu builds (want 0, "
                    "served from disk)\n",
                    static_cast<unsigned long long>(warm.builds));
        ok = false;
    }
    // The restored plan carries the dependency graph: the disk-served async
    // replay must reproduce the cold sweep's timing bit-for-bit.
    if (warm_sweep.weighted_mean_iter_us != cold_sweep.weighted_mean_iter_us) {
        std::printf("FAIL: disk-restored plan replays to a different mean "
                    "(%.6f vs %.6f us)\n",
                    warm_sweep.weighted_mean_iter_us,
                    cold_sweep.weighted_mean_iter_us);
        ok = false;
    }

    j.set("units", Json(static_cast<int64_t>(g.units.size())));
    j.set("streams", Json(static_cast<int64_t>(unit_streams.size())));
    j.set("serial_iter_us", Json(rs.mean_iter_us));
    j.set("async_iter_us", Json(ra.mean_iter_us));
    j.set("speedup", Json(speedup));
    j.set("cold_builds", Json(static_cast<int64_t>(cold.builds)));
    j.set("warm_disk_hits", Json(static_cast<int64_t>(warm.disk_hits)));
    std::printf("micro_async_json: %s\n", j.dump().c_str());

    if (!ok)
        return 1;
    std::printf("OK: async replay matches serial per stream, is deterministic, "
                ">=1.2x faster in virtual time, and restores its dependency "
                "graph from the two-tier store without rebuilding\n");
    return 0;
}
