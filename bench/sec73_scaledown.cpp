/// Reproduces §7.3: scaled-down performance emulation.  The 64-GPU RM
/// training iteration time is reproduced using only 2 replay ranks by
/// injecting communication delays computed from the network cost model at
/// the original 64-rank scale.
///
/// Paper: "successfully reproducing the execution time of the 64 GPUs RM
/// model training using only 2 GPUs."

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Sec 7.3: Scaled-down emulation — 64-GPU RM on 2 replay ranks");

    // Ground truth: the full 64-rank simulated run.
    wl::RunConfig run_cfg = bench::bench_run_config("A100", 64);
    run_cfg.iterations = 2;
    const auto full = wl::run_original("rm", {}, run_cfg);

    // Scale-down: replay only ranks 0 and 1, comm costs emulated at the
    // original group sizes (config -1 = derive from trace metadata).
    std::vector<const et::ExecutionTrace*> traces{&full.ranks[0].trace,
                                                  &full.ranks[1].trace};
    std::vector<const prof::ProfilerTrace*> profs{&full.ranks[0].prof,
                                                  &full.ranks[1].prof};
    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 2;
    cfg.emulate_world_size = -1;
    const auto scaled = core::Replayer::run_distributed(traces, profs, cfg,
                                                        run_cfg.topology);

    // Baseline without the delay model, to show what naive 2-rank replay
    // would report.
    core::ReplayConfig naive_cfg = cfg;
    naive_cfg.emulate_world_size = 0;
    const auto naive = core::Replayer::run_distributed(traces, profs, naive_cfg,
                                                       run_cfg.topology);

    const double scaled_ms =
        (scaled[0].mean_iter_us + scaled[1].mean_iter_us) / 2.0 / 1e3;
    const double naive_ms = (naive[0].mean_iter_us + naive[1].mean_iter_us) / 2.0 / 1e3;
    std::printf("full 64-rank original:             %8.2f ms/iter\n",
                full.mean_iter_us / 1e3);
    std::printf("2-rank replay + 64-rank comm model:%8.2f ms/iter   (error %.1f%%)\n",
                scaled_ms, 100.0 * relative_error(scaled_ms * 1e3, full.mean_iter_us));
    std::printf("2-rank replay, no delay model:     %8.2f ms/iter   (underestimates comm)\n",
                naive_ms);
    bench::print_footnote();
    return 0;
}
