/// Reproduces Figure 10: early-stage platform evaluation (§7.2).  On CPU,
/// V100 and A100 both the original and the replay run; on the new,
/// experimental platform only minimal software exists (no in-house custom
/// libraries), so only the generated benchmark — configured to skip
/// unsupported operators — can run, projecting the platform's benefit.
///
/// Paper shape: speedup-over-CPU bars grow V100 < A100 < New platform, with
/// the new platform's bar provided by replay alone (the red line).

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 10: Speedup over CPU, incl. experimental platform "
                        "(PARAM linear)");
    const std::string w = "param_linear";
    const auto traced = wl::run_original(w, {}, bench::bench_run_config("A100"));

    const double cpu_orig =
        wl::run_original(w, {}, bench::bench_run_config("CPU")).mean_iter_us;

    std::printf("%-12s %16s %16s\n", "Platform", "Original", "Replay");
    std::printf("--------------------------------------------------\n");
    for (const std::string platform : {"CPU", "V100", "A100", "NewPlatform"}) {
        double orig_speedup = 0.0;
        bool orig_available = platform != "NewPlatform";
        if (orig_available) {
            const auto orig = wl::run_original(w, {}, bench::bench_run_config(platform));
            orig_speedup = cpu_orig / orig.mean_iter_us;
        }
        // On the bare new platform, the replay runs with an *empty* custom
        // registry: only OS + framework + ATen available (§7.2).
        core::ReplayConfig cfg = bench::bench_replay_config(platform);
        if (platform == "NewPlatform")
            cfg.custom_ops = core::CustomOpRegistry::empty();
        core::Replayer replayer(traced.rank0().trace, &traced.rank0().prof, cfg);
        const double replay_speedup = cpu_orig / replayer.run().mean_iter_us;
        if (orig_available)
            std::printf("%-12s %15.1fx %15.1fx\n", platform.c_str(), orig_speedup,
                        replay_speedup);
        else
            std::printf("%-12s %16s %15.1fx   <-- projected from replay only\n",
                        platform.c_str(), "(cannot run)", replay_speedup);
    }
    std::printf("\nExpected shape: bars grow CPU < V100 < A100 < NewPlatform; the\n"
                "experimental platform's value is inferred from replay alone\n"
                "(paper Figure 10's red line).\n");
    bench::print_footnote();
    return 0;
}
