#pragma once

/// @file
/// Shared helpers for the paper-reproduction benchmark harnesses.
///
/// Every bench binary regenerates one table or figure from the paper's
/// evaluation: it runs the original workload(s) on the simulated platform,
/// replays the collected traces through Mystique, and prints the same rows
/// or series the paper reports.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/replayer.h"
#include "core/similarity.h"
#include "workloads/harness.h"

namespace mystique::bench {

/// Wall-clock microseconds since the steady-clock epoch (bench timing).
inline double
now_us()
{
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count()) /
           1e3;
}

/// Display names matching the paper's tables.
inline const char*
pretty_name(const std::string& workload)
{
    if (workload == "param_linear")
        return "PARAM linear";
    if (workload == "resnet")
        return "ResNet";
    if (workload == "asr")
        return "ASR";
    if (workload == "rm")
        return "RM";
    return workload.c_str();
}

/// Default original-run configuration for benches (paper-scale shapes,
/// shape-only execution, lean iteration counts for wall-clock budget).
inline wl::RunConfig
bench_run_config(const std::string& platform = "A100", int world = 1)
{
    wl::RunConfig cfg;
    cfg.platform = platform;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.world_size = world;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    cfg.seed = 2023;
    return cfg;
}

/// Default replay configuration matching bench_run_config.
inline core::ReplayConfig
bench_replay_config(const std::string& platform = "A100")
{
    core::ReplayConfig cfg;
    cfg.platform = platform;
    cfg.mode = fw::ExecMode::kShapeOnly;
    cfg.warmup_iterations = 1;
    cfg.iterations = 3;
    cfg.seed = 4050;
    return cfg;
}

/// Runs original + single-rank replay and returns both.
struct Pair {
    wl::RunResult original;
    core::ReplayResult replay;
};

inline Pair
run_pair(const std::string& workload, const wl::RunConfig& run_cfg,
         const core::ReplayConfig& replay_cfg)
{
    Pair p{wl::run_original(workload, {}, run_cfg), {}};
    core::Replayer replayer(p.original.rank0().trace, &p.original.rank0().prof,
                            replay_cfg);
    p.replay = replayer.run();
    return p;
}

inline void
print_header(const char* title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

inline void
print_footnote()
{
    std::printf("\n(Times are virtual microseconds from the analytic device model;\n"
                " compare shapes and ratios with the paper, not absolute values.)\n");
}

} // namespace mystique::bench
