/// Ablation: the §4.4 value-dependence design choice.
///
/// The ET records tensor shapes but not values, so the replayer must
/// *generate* embedding indices.  This ablation quantifies how the choice of
/// generation distribution affects replay fidelity for RM, whose production
/// lookups are Zipf-skewed: naive uniform generation inflates embedding time
/// (worse cache locality), while the empirically-derived Zipf default — and
/// user refinement through the EmbeddingGenConfig interface — recovers it.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Ablation (§4.4): replay embedding-index generation policy, RM");
    const auto orig = wl::run_original("rm", {}, bench::bench_run_config());

    double orig_embed_us = 0.0;
    for (const auto& k : orig.rank0().prof.kernels())
        if (k.kind == dev::KernelKind::kEmbedding)
            orig_embed_us += k.dur;

    struct Policy {
        const char* label;
        core::EmbeddingGenConfig config;
    };
    std::vector<Policy> policies{
        {"uniform (naive)",
         {core::EmbeddingGenConfig::Distribution::kUniform, 0.0}},
        {"zipf s=1.05 (default)",
         {core::EmbeddingGenConfig::Distribution::kZipf, 1.05}},
        {"zipf s=0.8 (user, too flat)",
         {core::EmbeddingGenConfig::Distribution::kZipf, 0.8}},
        {"zipf s=1.3 (user, too skewed)",
         {core::EmbeddingGenConfig::Distribution::kZipf, 1.3}},
    };

    std::printf("original embedding kernel time: %8.2f ms (traced iteration)\n\n",
                orig_embed_us / 1e3);
    std::printf("%-30s %14s %12s %12s\n", "replay policy", "embed time", "embed err",
                "e2e err");
    std::printf("------------------------------------------------------------------------\n");
    for (const auto& p : policies) {
        core::ReplayConfig cfg = bench::bench_replay_config();
        cfg.embedding = p.config;
        core::Replayer replayer(orig.rank0().trace, &orig.rank0().prof, cfg);
        const auto rep = replayer.run();
        double embed_us = 0.0;
        for (const auto& k : rep.prof.kernels())
            if (k.kind == dev::KernelKind::kEmbedding)
                embed_us += k.dur;
        const double calibrated =
            orig.mean_iter_us - rep.coverage.unsupported_exposed_us;
        std::printf("%-30s %11.2f ms %11.1f%% %11.1f%%\n", p.label, embed_us / 1e3,
                    100.0 * relative_error(embed_us, orig_embed_us),
                    100.0 * relative_error(rep.mean_iter_us, calibrated));
    }
    std::printf("\nExpected shape: the Zipf default lands closest; uniform generation\n"
                "overestimates embedding time (paper §4.4's 'rare exception' and the\n"
                "refinement interface it motivates).\n");
    bench::print_footnote();
    return 0;
}
