/// @file
/// Micro-benchmark and regression gate for the disk-backed PlanCache tier.
///
/// Three measurements, printed human-readably plus one JSON summary line
/// (`micro_plan_disk_json: {...}`) that scripts/ci.sh surfaces:
///
///   1. cold      — full ReplayPlan::build, the price a process restart used
///                  to pay per distinct group (same baseline shape as
///                  micro_plan_cache);
///   2. mem hit   — PlanCache::get_or_build served from the memory tier with
///                  the disk tier *configured*: the tier must be free when
///                  the memory tier already has the plan;
///   3. disk hit  — a fresh PlanCache (≈ a fresh process) resolving the same
///                  key from the on-disk store: one parse + reconstruct, no
///                  selection/coverage/stream pass, zero plan builds.
///
/// Exits nonzero unless a disk hit is ≥5x cheaper than a cold build, the
/// memory hit stays ≥10x cheaper than cold (the micro_plan_cache bar — the
/// disk tier must not tax it), disk fetches perform zero builds, and the
/// build wrote back exactly once.

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/plan_store.h"

namespace {

using namespace mystique;
using bench::now_us;

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    bench::print_header("micro_plan_disk: disk-backed plan tier vs cold builds");

    // resnet: the deepest per-op reconstruction cost of the workload set
    // (conv schemas), and heavy op repetition across layers — the shape the
    // tier exploits, since a disk hit compiles each *distinct* recorded IR
    // once while a cold build reconstructs every op from its schema.
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    const wl::RunResult traced = wl::run_original("resnet", tiny, run_cfg);
    const et::ExecutionTrace& trace = traced.rank0().trace;
    const prof::ProfilerTrace& prof = traced.rank0().prof;

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 2;

    const std::string dir =
        (fs::temp_directory_path() / ("myst_micro_plan_disk_" + std::to_string(::getpid())))
            .string();
    struct DirGuard {
        std::string d;
        ~DirGuard()
        {
            std::error_code ec;
            fs::remove_all(d, ec);
        }
    } guard{dir};

    // ---- 1. cold build (the restart price without the tier) ---------------
    constexpr int kColdReps = 7;
    double cold_us = 1e300;
    for (int i = 0; i < kColdReps; ++i) {
        const double t0 = now_us();
        auto plan = core::ReplayPlan::build(trace, &prof, cfg);
        const double dt = now_us() - t0;
        if (plan->ops().empty())
            return 1;
        if (dt < cold_us)
            cold_us = dt;
    }

    // ---- 2. memory hit with the disk tier configured ----------------------
    core::PlanCache warm_cache(16);
    warm_cache.set_store_dir(dir);
    (void)warm_cache.get_or_build(trace, &prof, cfg); // miss: build + writeback
    warm_cache.flush_writebacks();
    constexpr int kHitReps = 2000;
    const double h0 = now_us();
    for (int i = 0; i < kHitReps; ++i) {
        if (warm_cache.get_or_build(trace, &prof, cfg) == nullptr)
            return 1;
    }
    const double mem_hit_us = (now_us() - h0) / kHitReps;
    const core::PlanCacheStats warm_stats = warm_cache.stats();

    // ---- 3. disk hit on fresh caches (the restart price with the tier) ----
    constexpr int kDiskReps = 15;
    double disk_hit_us = 1e300;
    uint64_t disk_builds = 0;
    for (int i = 0; i < kDiskReps; ++i) {
        core::PlanCache fresh(16);
        fresh.set_store_dir(dir);
        const double t0 = now_us();
        auto plan = fresh.get_or_build(trace, &prof, cfg);
        const double dt = now_us() - t0;
        if (plan == nullptr || plan->ops().empty())
            return 1;
        disk_builds += fresh.stats().builds;
        if (dt < disk_hit_us)
            disk_hit_us = dt;
    }

    const double disk_speedup = disk_hit_us > 0.0 ? cold_us / disk_hit_us : 1e9;
    const double mem_speedup = mem_hit_us > 0.0 ? cold_us / mem_hit_us : 1e9;
    std::printf("  %-36s %12.1f us\n", "cold plan build (resnet, best of 7)", cold_us);
    std::printf("  %-36s %12.3f us   (%.0fx faster)\n",
                "memory hit (disk tier configured)", mem_hit_us, mem_speedup);
    std::printf("  %-36s %12.1f us   (%.1fx faster, 0 builds)\n",
                "disk hit (fresh cache, best of 15)", disk_hit_us, disk_speedup);

    Json j = Json::object();
    j.set("cold_build_us", Json(cold_us));
    j.set("mem_hit_us", Json(mem_hit_us));
    j.set("disk_hit_us", Json(disk_hit_us));
    j.set("disk_speedup", Json(disk_speedup));
    j.set("mem_speedup", Json(mem_speedup));
    std::printf("micro_plan_disk_json: %s\n", j.dump().c_str());

    // ---- gates ------------------------------------------------------------
    bool ok = true;
    if (disk_hit_us * 5.0 >= cold_us) {
        std::printf("FAIL: disk hit (%.1f us) is not >=5x cheaper than cold build "
                    "(%.1f us)\n",
                    disk_hit_us, cold_us);
        ok = false;
    }
    if (mem_hit_us * 10.0 >= cold_us) {
        std::printf("FAIL: memory hit (%.3f us) regressed below the micro_plan_cache "
                    "bar (>=10x vs cold %.1f us) with the disk tier configured\n",
                    mem_hit_us, cold_us);
        ok = false;
    }
    if (warm_stats.hits < kHitReps || warm_stats.misses != 1 ||
        warm_stats.disk_misses != 1 || warm_stats.builds != 1 ||
        warm_stats.writebacks != 1) {
        std::printf("FAIL: warm-cache accounting off (hits=%llu misses=%llu "
                    "disk_misses=%llu builds=%llu writebacks=%llu)\n",
                    static_cast<unsigned long long>(warm_stats.hits),
                    static_cast<unsigned long long>(warm_stats.misses),
                    static_cast<unsigned long long>(warm_stats.disk_misses),
                    static_cast<unsigned long long>(warm_stats.builds),
                    static_cast<unsigned long long>(warm_stats.writebacks));
        ok = false;
    }
    if (disk_builds != 0) {
        std::printf("FAIL: disk-hit fetches performed %llu plan builds (want 0)\n",
                    static_cast<unsigned long long>(disk_builds));
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("OK: disk hits are >=5x cheaper than cold builds (zero rebuilds) and "
                "memory hits keep the >=10x micro_plan_cache bar\n");
    return 0;
}
