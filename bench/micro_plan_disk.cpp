/// @file
/// Micro-benchmark and regression gate for the disk-backed PlanCache tier.
///
/// Three measurements, printed human-readably plus one JSON summary line
/// (`micro_plan_disk_json: {...}`) that scripts/ci.sh surfaces:
///
///   1. cold      — full ReplayPlan::build, the price a process restart used
///                  to pay per distinct group (same baseline shape as
///                  micro_plan_cache);
///   2. mem hit   — PlanCache::get_or_build served from the memory tier with
///                  the disk tier *configured*: the tier must be free when
///                  the memory tier already has the plan;
///   3. disk hit  — a fresh PlanCache (≈ a fresh process) resolving the same
///                  key from the on-disk store: one parse + reconstruct, no
///                  selection/coverage/stream pass, zero plan builds.
///
/// Cold builds and disk hits are timed *interleaved* (one of each per round)
/// so the speedup ratio compares measurements taken under the same machine
/// load rather than across two separate phases.
///
/// Exits nonzero unless a disk hit is ≥5x cheaper than a cold build, the
/// memory hit stays ≥10x cheaper than cold (the micro_plan_cache bar — the
/// disk tier must not tax it), disk fetches perform zero builds, and the
/// build wrote back exactly once.

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "common/json.h"
#include "core/plan_cache.h"
#include "core/plan_store.h"

namespace {

using namespace mystique;
using bench::now_us;

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    bench::print_header("micro_plan_disk: disk-backed plan tier vs cold builds");

    // resnet: the deepest per-op reconstruction cost of the workload set
    // (conv schemas), and heavy op repetition across layers — the shape the
    // tier exploits, since a disk hit compiles each *distinct* recorded IR
    // once while a cold build reconstructs every op from its schema.
    wl::RunConfig run_cfg;
    run_cfg.mode = fw::ExecMode::kShapeOnly;
    run_cfg.warmup_iterations = 1;
    run_cfg.iterations = 2;
    wl::WorkloadOptions tiny;
    tiny.preset = wl::Preset::kTiny;
    const wl::RunResult traced = wl::run_original("resnet", tiny, run_cfg);
    // Shared handle, like a TraceDatabase holds: fetches through the cache
    // share the trace with restored plans instead of deep-copying it.
    const auto trace =
        std::make_shared<const et::ExecutionTrace>(traced.rank0().trace);
    const prof::ProfilerTrace& prof = traced.rank0().prof;

    core::ReplayConfig cfg = bench::bench_replay_config();
    cfg.iterations = 2;

    const std::string dir =
        (fs::temp_directory_path() / ("myst_micro_plan_disk_" + std::to_string(::getpid())))
            .string();
    struct DirGuard {
        std::string d;
        ~DirGuard()
        {
            std::error_code ec;
            fs::remove_all(d, ec);
        }
    } guard{dir};

    // ---- 1. memory hit with the disk tier configured ----------------------
    // (Runs first so the store is populated for the interleaved cold/disk
    // rounds below.)
    core::PlanCache warm_cache(16);
    warm_cache.set_store_dir(dir);
    (void)warm_cache.get_or_build(trace, &prof, cfg); // miss: build + writeback
    warm_cache.flush_writebacks();
    constexpr int kHitReps = 2000;
    const double h0 = now_us();
    for (int i = 0; i < kHitReps; ++i) {
        if (warm_cache.get_or_build(trace, &prof, cfg) == nullptr)
            return 1;
    }
    const double mem_hit_us = (now_us() - h0) / kHitReps;
    const core::PlanCacheStats warm_stats = warm_cache.stats();

    // ---- 2./3. cold build vs disk hit, interleaved ------------------------
    // Each round times one full ReplayPlan::build (the restart price without
    // the tier) immediately followed by one fresh-cache disk fetch (the
    // restart price with it).  Interleaving keeps the two sides under the
    // same machine conditions — the speedup gate is a ratio, and measuring
    // the phases back-to-back made it flaky whenever background load drifted
    // between them (e.g. right after a parallel ctest phase).
    constexpr int kRounds = 15;
    double cold_us = 1e300;
    double disk_hit_us = 1e300;
    uint64_t disk_builds = 0;
    bool round_failed = false;
    auto measure_rounds = [&] {
        cold_us = disk_hit_us = 1e300;
        for (int i = 0; i < kRounds; ++i) {
            double t0 = now_us();
            auto built = core::ReplayPlan::build(trace, &prof, cfg);
            const double cold_dt = now_us() - t0;
            if (built->ops().empty()) {
                round_failed = true;
                return;
            }
            if (cold_dt < cold_us)
                cold_us = cold_dt;

            core::PlanCache fresh(16);
            fresh.set_store_dir(dir);
            t0 = now_us();
            auto plan = fresh.get_or_build(trace, &prof, cfg);
            const double dt = now_us() - t0;
            if (plan == nullptr || plan->ops().empty()) {
                round_failed = true;
                return;
            }
            disk_builds += fresh.stats().builds;
            if (dt < disk_hit_us)
                disk_hit_us = dt;
        }
    };
    // Up to three measurement windows: best-of within a window de-noises
    // short preemptions, but sustained host-side contention can pollute a
    // whole window; a later quiet window proves the ratio is real.
    constexpr int kAttempts = 3;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        measure_rounds();
        if (round_failed)
            return 1;
        if (disk_hit_us * 5.0 < cold_us)
            break;
        std::printf("  attempt %d: disk hit %.1f us vs cold %.1f us (<5x) — "
                    "remeasuring (loaded window?)\n",
                    attempt + 1, disk_hit_us, cold_us);
    }

    const double disk_speedup = disk_hit_us > 0.0 ? cold_us / disk_hit_us : 1e9;
    const double mem_speedup = mem_hit_us > 0.0 ? cold_us / mem_hit_us : 1e9;
    std::printf("  %-36s %12.1f us\n", "cold plan build (resnet, best of 15)", cold_us);
    std::printf("  %-36s %12.3f us   (%.0fx faster)\n",
                "memory hit (disk tier configured)", mem_hit_us, mem_speedup);
    std::printf("  %-36s %12.1f us   (%.1fx faster, 0 builds)\n",
                "disk hit (fresh cache, best of 15)", disk_hit_us, disk_speedup);

    Json j = Json::object();
    j.set("cold_build_us", Json(cold_us));
    j.set("mem_hit_us", Json(mem_hit_us));
    j.set("disk_hit_us", Json(disk_hit_us));
    j.set("disk_speedup", Json(disk_speedup));
    j.set("mem_speedup", Json(mem_speedup));
    std::printf("micro_plan_disk_json: %s\n", j.dump().c_str());

    // ---- gates ------------------------------------------------------------
    bool ok = true;
    if (disk_hit_us * 5.0 >= cold_us) {
        std::printf("FAIL: disk hit (%.1f us) is not >=5x cheaper than cold build "
                    "(%.1f us)\n",
                    disk_hit_us, cold_us);
        ok = false;
    }
    if (mem_hit_us * 10.0 >= cold_us) {
        std::printf("FAIL: memory hit (%.3f us) regressed below the micro_plan_cache "
                    "bar (>=10x vs cold %.1f us) with the disk tier configured\n",
                    mem_hit_us, cold_us);
        ok = false;
    }
    if (warm_stats.hits < kHitReps || warm_stats.misses != 1 ||
        warm_stats.disk_misses != 1 || warm_stats.builds != 1 ||
        warm_stats.writebacks != 1) {
        std::printf("FAIL: warm-cache accounting off (hits=%llu misses=%llu "
                    "disk_misses=%llu builds=%llu writebacks=%llu)\n",
                    static_cast<unsigned long long>(warm_stats.hits),
                    static_cast<unsigned long long>(warm_stats.misses),
                    static_cast<unsigned long long>(warm_stats.disk_misses),
                    static_cast<unsigned long long>(warm_stats.builds),
                    static_cast<unsigned long long>(warm_stats.writebacks));
        ok = false;
    }
    if (disk_builds != 0) {
        std::printf("FAIL: disk-hit fetches performed %llu plan builds (want 0)\n",
                    static_cast<unsigned long long>(disk_builds));
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("OK: disk hits are >=5x cheaper than cold builds (zero rebuilds) and "
                "memory hits keep the >=10x micro_plan_cache bar\n");
    return 0;
}
