/// Reproduces Table 4: end-to-end execution time of a single training
/// iteration — original, original excluding unsupported operators (the
/// calibrated baseline), and replay — for each workload on one GPU.
///
/// Paper reference (ms): PARAM 14.9/14.9/14.1, ResNet 64.4/64.4/70.7,
/// ASR 316.3/239.3/229.1, RM 65.9/59.9/58.4.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Table 4: E2e execution time of a single iteration (ms)");
    std::printf("%-14s %10s %22s %10s %8s\n", "Model", "Original", "Orig (excl. unsupp.)",
                "Replay", "Error");
    std::printf("----------------------------------------------------------------\n");
    for (const std::string w : {"param_linear", "resnet", "asr", "rm"}) {
        const bench::Pair p =
            bench::run_pair(w, bench::bench_run_config(), bench::bench_replay_config());
        const double orig = p.original.mean_iter_us;
        const double calibrated = orig - p.replay.coverage.unsupported_exposed_us;
        const double replay = p.replay.mean_iter_us;
        std::printf("%-14s %9.1f %21.1f %10.1f %7.1f%%\n", bench::pretty_name(w),
                    orig / 1e3, calibrated / 1e3, replay / 1e3,
                    100.0 * relative_error(replay, calibrated));
    }
    std::printf("\nPaper (ms):    PARAM 14.9/14.9/14.1 (5.4%%), ResNet 64.4/64.4/70.7 (9.8%%),\n"
                "               ASR 316.3/239.3/229.1 (4.3%%), RM 65.9/59.9/58.4 (2.5%%)\n");
    bench::print_footnote();
    return 0;
}
