/// Reproduces Figure 8: normalized energy efficiency (throughput / power)
/// as the device power limit sweeps from 100 W to 350 W, original vs replay.
///
/// Paper shape: efficiency rises with the limit and saturates at a
/// workload-dependent knee; replay tracks the original curve.

#include "bench_common.h"

int
main()
{
    using namespace mystique;
    bench::print_header("Figure 8: Normalized energy efficiency vs device power limit (A100)");
    const std::vector<double> limits{100, 150, 200, 250, 300, 350};

    for (const std::string w : {"param_linear", "resnet", "asr", "rm"}) {
        std::printf("\n%s\n", bench::pretty_name(w));
        std::printf("  %-10s %14s %14s\n", "limit (W)", "orig eff", "replay eff");
        // Trace once at full power.
        const auto traced = wl::run_original(w, {}, bench::bench_run_config());
        std::vector<double> orig_eff, rep_eff;
        for (double limit : limits) {
            wl::RunConfig rc = bench::bench_run_config();
            rc.power_limit_w = limit;
            rc.iterations = 2;
            const auto orig = wl::run_original(w, {}, rc);
            core::ReplayConfig cc = bench::bench_replay_config();
            cc.power_limit_w = limit;
            cc.iterations = 2;
            core::Replayer replayer(traced.rank0().trace, &traced.rank0().prof, cc);
            const auto rep = replayer.run();
            // efficiency = throughput / power = 1 / (time * power)
            orig_eff.push_back(1.0 /
                               (orig.mean_iter_us * orig.rank0().metrics.power_w));
            rep_eff.push_back(1.0 / (rep.mean_iter_us * rep.metrics.power_w));
        }
        const double o_max = *std::max_element(orig_eff.begin(), orig_eff.end());
        const double r_max = *std::max_element(rep_eff.begin(), rep_eff.end());
        for (std::size_t i = 0; i < limits.size(); ++i)
            std::printf("  %-10.0f %14.3f %14.3f\n", limits[i], orig_eff[i] / o_max,
                        rep_eff[i] / r_max);
    }
    std::printf("\nExpected shape: curves rise then saturate; replay tracks the\n"
                "original's sensitivity trend per workload (paper Figure 8).\n");
    bench::print_footnote();
    return 0;
}
